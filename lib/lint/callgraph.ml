(* Cross-module value-level call graph over the loaded typed trees.

   Each top-level value binding (including bindings inside nested
   modules and functor bodies) becomes a node named by its canonical
   dotted path, e.g. "Po_model.Monopoly.price_sweep".  One traversal per
   unit records, per node, everything the typed rules need:

   - [edges]: every resolved reference to another top-level value, with
     the reference location.  Reachability (R7/R10) follows all edges,
     not just application heads — a function passed as an argument is a
     function that will run.
   - [mutations]: writes to state the node does not own — ref
     assignment, Hashtbl/Buffer/Queue/Stack updates, mutable record
     fields — where the target is not bound inside the node.  Atomic
     operations are never recorded (that is the sanctioned primitive),
     [Domain.DLS]-derived targets and [Mutex.protect] bodies are
     exempt.
   - [pool_calls]: call sites of the Po_par.Pool combinators, with the
     values referenced by their closure arguments (the reachability
     roots of R7) and any shared mutation inside the closures
     themselves.
   - [compare_sites]: uses of the polymorphic comparison family whose
     instantiated argument type contains [float] (R9's evidence).
   - [discards]: result values dropped via [ignore], [let _ =] or a
     wildcard [Error _] match arm (R8's evidence; [Error _ as e] is
     propagation and exempt).
   - flags: does the node apply a span wrapper, an
     [ensure_converged]-style check, a metrics emitter?

   Name resolution undoes dune's module mangling (both "Lib__Mod" unit
   names and references through generated alias modules land on
   "Lib.Mod"), follows top-level [module M = ...] aliases including
   functor applications, and uses binder stamps for within-unit
   references, so internal and external references to the same value
   unify on one node id. *)

type mutation = {
  mut_loc : Location.t;
  what : string;  (* human description, e.g. "Hashtbl.replace" *)
}

type pool_call = {
  pc_loc : Location.t;
  combinator : string;  (* "parallel_map", "chain_map", ... *)
  closure_roots : (string * Location.t) list;
      (* top-level values referenced from the closure arguments *)
  closure_mutations : mutation list;
      (* shared-state writes directly inside the closure arguments *)
}

type compare_site = {
  cs_loc : Location.t;
  op : string;  (* "compare", "=", "min", ... *)
  ty_rendered : string;  (* the offending argument type, for the message *)
}

type discard = { d_loc : Location.t; d_what : string }

type node = {
  id : string;
  file : string;
  line : int;
  col : int;
  mutable edges : (string * Location.t) list;
  mutable applied : (string * Location.t) list;  (* subset: application heads *)
  mutable mutations : mutation list;
  mutable pool_calls : pool_call list;
  mutable has_span : bool;
  mutable has_ensure : bool;
  mutable metric_emits : Location.t list;
  mutable compare_sites : compare_site list;
  mutable discards : discard list;
}

type t = {
  nodes : (string, node) Hashtbl.t;
  order : string list;  (* node ids sorted by (file, line, id) *)
  values : (string, string) Hashtbl.t;  (* any top-level value name -> node id *)
  callers : (string, string list) Hashtbl.t;  (* node id -> caller node ids *)
}

(* ------------------------- naming -------------------------- *)

let join = String.concat "."

let last_two name =
  match List.rev (String.split_on_char '.' name) with
  | a :: b :: _ -> Some (b, a)
  | _ -> None

let last_one name =
  match List.rev (String.split_on_char '.' name) with
  | a :: _ -> Some a
  | [] -> None

let strip_stdlib name =
  match String.index_opt name '.' with
  | Some 6 when String.starts_with ~prefix:"Stdlib." name ->
      String.sub name 7 (String.length name - 7)
  | _ -> name

(* head ident and member path, outermost first:
   Po_core.Cp_game.solve -> (Po_core, ["Cp_game"; "solve"]) *)
let rec split_path p =
  match p with
  | Path.Pident id -> (id, [])
  | Path.Pdot (p, s) ->
      let id, tail = split_path p in
      (id, tail @ [ s ])
  | Path.Papply (p, _) -> split_path p
  | Path.Pextra_ty (p, _) -> split_path p

(* ------------------------- builder -------------------------- *)

type builder = {
  b_nodes : (string, node) Hashtbl.t;
  b_values : (string, string) Hashtbl.t;
  b_aliases : (string, string list) Hashtbl.t;
      (* joined module path -> canonical parts it stands for *)
  b_decls : (string, Types.type_declaration) Hashtbl.t;
      (* canonical type name (or "Unit/ident_stamp[.member]") -> decl *)
}

type unit_ctx = {
  info : Cmt_loader.unit_info;
  binders : (string, string) Hashtbl.t;  (* Ident.unique_name -> node id *)
  modstamps : (string, string list) Hashtbl.t;
      (* Ident.unique_name of a module -> canonical parts *)
  mutable bodies : (node * Typedtree.expression) list;
}

let resolve_alias b parts =
  let rec rewrite depth parts =
    if depth > 8 then parts
    else
      let rec try_prefix rev_pre post =
        match post with
        | [] -> None
        | seg :: rest -> (
            let rev_pre = seg :: rev_pre in
            match try_prefix rev_pre rest with
            | Some _ as r -> r  (* longest prefix wins *)
            | None -> (
                let prefix = List.rev rev_pre in
                match Hashtbl.find_opt b.b_aliases (join prefix) with
                | Some target when target <> prefix -> Some (target @ rest)
                | _ -> None))
      in
      match try_prefix [] parts with
      | Some parts' -> rewrite (depth + 1) parts'
      | None -> parts
  in
  rewrite 0 parts

let canonical_module_parts b ctx p =
  let head, tail = split_path p in
  let parts =
    if Ident.global head then
      Cmt_loader.canonical_of_modname (Ident.name head) @ tail
    else
      match Hashtbl.find_opt ctx.modstamps (Ident.unique_name head) with
      | Some parts -> parts @ tail
      | None -> Ident.name head :: tail
  in
  resolve_alias b parts

(* A value reference: [None] means a local (let-bound, parameter) that
   is no edge; otherwise the canonical dotted name. *)
let resolve_value b ctx p =
  let head, tail = split_path p in
  if Ident.global head then
    Some (join (resolve_alias b (Cmt_loader.canonical_of_modname (Ident.name head) @ tail)))
  else
    match Hashtbl.find_opt ctx.modstamps (Ident.unique_name head) with
    | Some parts -> Some (join (resolve_alias b (parts @ tail)))
    | None -> (
        match tail with
        | [] -> (
            match Hashtbl.find_opt ctx.binders (Ident.unique_name head) with
            | Some node_id -> Some node_id
            | None -> None)
        | _ ->
            (* through an unresolved local module (e.g. a functor
               parameter): keep a best-effort name; it matches no node
               and resolves to nothing, which is the right amount of
               conservatism. *)
            Some (join (Ident.name head :: tail)))

(* ---------------------- detector tables --------------------- *)

let pool_combinators =
  [ "parallel_map"; "maybe_map"; "parallel_init"; "chunk_map"; "chain_map";
    "map_reduce"; "run_chunks" ]

let is_pool_combinator name =
  match last_two name with
  | Some ("Pool", c) -> if List.mem c pool_combinators then Some c else None
  | _ -> None

let metric_ops = [ "incr"; "add"; "set"; "observe"; "time_s" ]

let is_metric_emit name =
  match last_two name with
  | Some ("Metrics", op) -> List.mem op metric_ops
  | _ -> false

let is_span_wrapper name =
  match last_one name with
  | Some ("with_span" | "with_figure_scope") -> true
  | _ -> false

let is_ensure name =
  match last_one name with Some "ensure_converged" -> true | _ -> false

let is_dls_get name =
  match last_two name with Some ("DLS", "get") -> true | _ -> false

let is_mutex_protect name =
  match last_two name with Some ("Mutex", "protect") -> true | _ -> false

(* Writes to the containers the domain-safety rule tracks.  Atomic is
   deliberately absent (that is the sanctioned escape hatch); Array is
   deliberately absent too — disjoint-index writes into a preallocated
   array are the pool's own result-collection idiom and ownership of
   indices is beyond a static rule. *)
let mutators =
  [ (":=", "ref assignment (:=)");
    ("incr", "incr on a ref");
    ("decr", "decr on a ref");
    ("Hashtbl.replace", "Hashtbl.replace");
    ("Hashtbl.add", "Hashtbl.add");
    ("Hashtbl.remove", "Hashtbl.remove");
    ("Hashtbl.reset", "Hashtbl.reset");
    ("Hashtbl.clear", "Hashtbl.clear");
    ("Hashtbl.filter_map_inplace", "Hashtbl.filter_map_inplace");
    ("Buffer.add_string", "Buffer.add_string");
    ("Buffer.add_char", "Buffer.add_char");
    ("Buffer.add_bytes", "Buffer.add_bytes");
    ("Buffer.add_substring", "Buffer.add_substring");
    ("Buffer.add_buffer", "Buffer.add_buffer");
    ("Buffer.clear", "Buffer.clear");
    ("Buffer.reset", "Buffer.reset");
    ("Buffer.truncate", "Buffer.truncate");
    ("Queue.push", "Queue.push");
    ("Queue.add", "Queue.add");
    ("Queue.pop", "Queue.pop");
    ("Queue.take", "Queue.take");
    ("Queue.clear", "Queue.clear");
    ("Queue.transfer", "Queue.transfer");
    ("Stack.push", "Stack.push");
    ("Stack.pop", "Stack.pop");
    ("Stack.clear", "Stack.clear") ]

let mutator_of name = List.assoc_opt (strip_stdlib name) mutators

(* Polymorphic comparison family.  The structural members are flagged
   wherever they are instantiated at a float-bearing type; the ordering
   operators only when abstracted ([List.sort (<) ...]) — a direct
   [x < y] on floats is specialized by the compiler to the IEEE
   primitive and is fine. *)
let compare_ops_any = [ "compare"; "="; "<>"; "=="; "!="; "min"; "max" ]
let compare_ops_ref_only = [ "<"; ">"; "<="; ">=" ]

(* ---------------------- float-in-type test ------------------ *)

let rec render_type b ctx ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> render_path b ctx p
  | Types.Tconstr (p, args, _) ->
      String.concat " "
        [ String.concat ", " (List.map (render_type b ctx) args);
          render_path b ctx p ]
  | Types.Ttuple tys ->
      String.concat " * " (List.map (render_type b ctx) tys)
  | Types.Tarrow (_, a, r, _) ->
      render_type b ctx a ^ " -> " ^ render_type b ctx r
  | Types.Tvar (Some v) -> "'" ^ v
  | Types.Tvar None -> "'_"
  | _ -> "_"

and render_path b ctx p =
  let head, tail = split_path p in
  if Ident.global head then
    join (resolve_alias b (Cmt_loader.canonical_of_modname (Ident.name head) @ tail))
  else
    match Hashtbl.find_opt ctx.modstamps (Ident.unique_name head) with
    | Some parts -> join (resolve_alias b (parts @ tail))
    | None -> join (Ident.name head :: tail)

let decl_keys b ctx p =
  let head, tail = split_path p in
  if Ident.global head then
    [ join (resolve_alias b (Cmt_loader.canonical_of_modname (Ident.name head) @ tail)) ]
  else
    let stamped =
      ctx.info.Cmt_loader.modname ^ "/" ^ Ident.unique_name head
      ^ (match tail with [] -> "" | _ -> "." ^ join tail)
    in
    match Hashtbl.find_opt ctx.modstamps (Ident.unique_name head) with
    | Some parts -> [ join (resolve_alias b (parts @ tail)); stamped ]
    | None -> [ stamped ]

let rec type_contains_float b ctx visited depth ty =
  if depth > 24 then false
  else
    let id = Types.get_id ty in
    if List.mem id !visited then false
    else begin
      visited := id :: !visited;
      match Types.get_desc ty with
      | Types.Tconstr (p, args, _) ->
          Path.same p Predef.path_float
          || (let decl =
                List.find_map (Hashtbl.find_opt b.b_decls) (decl_keys b ctx p)
              in
              match decl with
              | Some d -> decl_contains_float b ctx visited depth d
              | None -> false)
          || List.exists (type_contains_float b ctx visited (depth + 1)) args
      | Types.Ttuple tys ->
          List.exists (type_contains_float b ctx visited (depth + 1)) tys
      | Types.Tpoly (ty, _) ->
          type_contains_float b ctx visited (depth + 1) ty
      | _ -> false
    end

and decl_contains_float b ctx visited depth (d : Types.type_declaration) =
  let deeper = type_contains_float b ctx visited (depth + 1) in
  (match d.Types.type_manifest with Some ty -> deeper ty | None -> false)
  ||
  match d.Types.type_kind with
  | Types.Type_record (lds, _) ->
      List.exists (fun ld -> deeper ld.Types.ld_type) lds
  | Types.Type_variant (cds, _) ->
      List.exists
        (fun cd ->
          match cd.Types.cd_args with
          | Types.Cstr_tuple tys -> List.exists deeper tys
          | Types.Cstr_record lds ->
              List.exists (fun ld -> deeper ld.Types.ld_type) lds)
        cds
  | _ -> false

(* --------------------- pass 1: skeleton --------------------- *)

let new_node b ~file ~(loc : Location.t) id_parts =
  let base = join id_parts in
  let id =
    if Hashtbl.mem b.b_nodes base then
      (* top-level shadowing: keep both, the later one under a
         line-qualified id (stamp-based references still resolve). *)
      Printf.sprintf "%s:%d" base loc.Location.loc_start.Lexing.pos_lnum
    else base
  in
  let n =
    { id; file;
      line = loc.Location.loc_start.Lexing.pos_lnum;
      col =
        loc.Location.loc_start.Lexing.pos_cnum
        - loc.Location.loc_start.Lexing.pos_bol;
      edges = []; applied = []; mutations = []; pool_calls = [];
      has_span = false; has_ensure = false; metric_emits = [];
      compare_sites = []; discards = [] }
  in
  Hashtbl.replace b.b_nodes id n;
  n

(* [result] is an ordinary Stdlib type, not a Predef one; matching the
   path's last component also follows [type t = (a, b) result] aliases
   that keep the name. *)
let is_result_ty ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> String.equal (Path.last p) "result"
  | _ -> false

let rec collect_structure b ctx path (str : Typedtree.structure) =
  List.iter (collect_item b ctx path) str.Typedtree.str_items

and collect_item b ctx path item =
  let open Typedtree in
  match item.str_desc with
  | Tstr_value (_, vbs) -> List.iter (collect_vb b ctx path) vbs
  | Tstr_module mb -> collect_module b ctx path mb
  | Tstr_recmodule mbs -> List.iter (collect_module b ctx path) mbs
  | Tstr_type (_, decls) -> List.iter (collect_typedecl b ctx path) decls
  | Tstr_eval (e, _) ->
      let loc = item.str_loc in
      let n =
        new_node b ~file:ctx.info.Cmt_loader.file ~loc
          (path @ [ Printf.sprintf "(init:%d)" loc.Location.loc_start.Lexing.pos_lnum ])
      in
      ctx.bodies <- (n, e) :: ctx.bodies
  | Tstr_include { incl_mod; _ } -> (
      match incl_mod.mod_desc with
      | Tmod_structure s -> collect_structure b ctx path s
      | _ -> ())
  | _ -> ()

and collect_vb b ctx path vb =
  let open Typedtree in
  let ids = pat_bound_idents vb.vb_pat in
  let name_parts =
    match ids with
    | id :: _ -> path @ [ Ident.name id ]
    | [] ->
        path
        @ [ Printf.sprintf "(bind:%d)"
              vb.vb_loc.Location.loc_start.Lexing.pos_lnum ]
  in
  let n = new_node b ~file:ctx.info.Cmt_loader.file ~loc:vb.vb_loc name_parts in
  List.iter
    (fun id ->
      Hashtbl.replace ctx.binders (Ident.unique_name id) n.id;
      Hashtbl.replace b.b_values (join (path @ [ Ident.name id ])) n.id)
    ids;
  (match ids with
  | [] when is_result_ty vb.vb_expr.exp_type ->
      n.discards <-
        { d_loc = vb.vb_loc;
          d_what = "result value discarded by a wildcard binding" }
        :: n.discards
  | _ -> ());
  ctx.bodies <- (n, vb.vb_expr) :: ctx.bodies

and collect_module b ctx path mb =
  let open Typedtree in
  let name = Option.value mb.mb_name.Location.txt ~default:"_" in
  let path' = path @ [ name ] in
  Option.iter
    (fun id -> Hashtbl.replace ctx.modstamps (Ident.unique_name id) path')
    mb.mb_id;
  collect_modexpr b ctx path' mb.mb_expr

and collect_modexpr b ctx path me =
  let open Typedtree in
  match me.mod_desc with
  | Tmod_structure s -> collect_structure b ctx path s
  | Tmod_constraint (me, _, _, _) -> collect_modexpr b ctx path me
  | Tmod_functor (param, body) ->
      (match param with
      | Named (id_opt, _, mty) -> harvest_param_types b ctx id_opt mty
      | Unit -> ());
      collect_modexpr b ctx path body
  | Tmod_ident (p, _) ->
      let target = canonical_module_parts b ctx p in
      if target <> path then Hashtbl.replace b.b_aliases (join path) target
  | Tmod_apply (f, _, _) -> (
      (* [module M = F (X)]: route M's members to the functor body's
         nodes — shape-accurate enough for reachability and witnesses. *)
      match f.mod_desc with
      | Tmod_ident (p, _) ->
          let target = canonical_module_parts b ctx p in
          if target <> path then Hashtbl.replace b.b_aliases (join path) target
      | _ -> ())
  | Tmod_apply_unit f -> (
      match f.mod_desc with
      | Tmod_ident (p, _) ->
          let target = canonical_module_parts b ctx p in
          if target <> path then Hashtbl.replace b.b_aliases (join path) target
      | _ -> ())
  | Tmod_unpack _ -> ()

and collect_typedecl b ctx path (td : Typedtree.type_declaration) =
  let name = Ident.name td.Typedtree.typ_id in
  Hashtbl.replace b.b_decls (join (path @ [ name ])) td.Typedtree.typ_type;
  Hashtbl.replace b.b_decls
    (ctx.info.Cmt_loader.modname ^ "/" ^ Ident.unique_name td.Typedtree.typ_id)
    td.Typedtree.typ_type

and harvest_param_types b ctx id_opt (mty : Typedtree.module_type) =
  (* Type abbreviations in a functor parameter's signature ([X : sig
     type t = float end]): register them under the parameter's stamp so
     [X.t] inside the body resolves for the float test. *)
  match (id_opt, mty.Typedtree.mty_desc) with
  | Some pid, Typedtree.Tmty_signature sg ->
      List.iter
        (fun (si : Typedtree.signature_item) ->
          match si.Typedtree.sig_desc with
          | Typedtree.Tsig_type (_, tds) ->
              List.iter
                (fun (td : Typedtree.type_declaration) ->
                  Hashtbl.replace b.b_decls
                    (ctx.info.Cmt_loader.modname ^ "/"
                    ^ Ident.unique_name pid ^ "."
                    ^ Ident.name td.Typedtree.typ_id)
                    td.Typedtree.typ_type)
                tds
          | _ -> ())
        sg.Typedtree.sig_items
  | _ -> ()

(* --------------------- pass 2: node facts ------------------- *)

type facts = {
  mutable f_edges : (string * Location.t) list;
  mutable f_applied : (string * Location.t) list;
  mutable f_mutations : mutation list;
  mutable f_pool_calls : pool_call list;
  mutable f_has_span : bool;
  mutable f_has_ensure : bool;
  mutable f_metric_emits : Location.t list;
  mutable f_compare_sites : compare_site list;
  mutable f_discards : discard list;
}

let fresh_facts () =
  { f_edges = []; f_applied = []; f_mutations = []; f_pool_calls = [];
    f_has_span = false; f_has_ensure = false; f_metric_emits = [];
    f_compare_sites = []; f_discards = [] }

let loc_key (loc : Location.t) =
  (loc.Location.loc_start.Lexing.pos_lnum,
   loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol)

let is_funarg ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> true
  | Types.Tconstr (p, [ t ], _) when Path.same p Predef.path_option -> (
      match Types.get_desc t with Types.Tarrow _ -> true | _ -> false)
  | _ -> false

let rec scan_expr b ctx (root : Typedtree.expression) : facts =
  let open Typedtree in
  let f = fresh_facts () in
  let bound = Hashtbl.create 64 in
  (* character spans of Mutex.protect bodies: writes inside them are
     lock-protected, not data races *)
  let protected_spans = ref [] in
  (* application-head locations, to tell an applied [<] (specialized,
     fine) from an abstracted one (generic compare, flagged) *)
  let head_locs = Hashtbl.create 16 in
  let in_protected (loc : Location.t) =
    let c = loc.Location.loc_start.Lexing.pos_cnum in
    List.exists (fun (a, z) -> a <= c && c <= z) !protected_spans
  in
  let resolve_head (e : expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> resolve_value b ctx p
    | _ -> None
  in
  let rec head_shared (e : expression) =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
        not (Hashtbl.mem bound (Ident.unique_name id))
    | Texp_ident (_, _, _) -> true
    | Texp_field (e, _, _) -> head_shared e
    | Texp_apply (hd, _) -> (
        match resolve_head hd with
        | Some name when is_dls_get name -> false
        | _ -> true)
    | Texp_let (_, _, e) | Texp_sequence (_, e) -> head_shared e
    | _ -> true
  in
  let record_mutation into what (site : Location.t) target =
    if head_shared target && not (in_protected site) then
      into := { mut_loc = site; what } :: !into
  in
  let muts_acc = ref [] in
  let bind_pat : type k. k general_pattern -> unit =
   fun p ->
    List.iter
      (fun id -> Hashtbl.replace bound (Ident.unique_name id) ())
      (pat_bound_idents p)
  in
  let expr_hook (sub : Tast_iterator.iterator) (e : expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) -> (
        match resolve_value b ctx p with
        | None -> ()
        | Some name ->
            f.f_edges <- (name, e.exp_loc) :: f.f_edges;
            let op = strip_stdlib name in
            let interesting =
              List.mem op compare_ops_any
              || (List.mem op compare_ops_ref_only
                 && not (Hashtbl.mem head_locs (loc_key e.exp_loc)))
            in
            if interesting then (
              match Types.get_desc e.exp_type with
              | Types.Tarrow (_, t1, _, _)
                when type_contains_float b ctx (ref []) 0 t1 ->
                  f.f_compare_sites <-
                    { cs_loc = e.exp_loc; op;
                      ty_rendered = render_type b ctx t1 }
                    :: f.f_compare_sites
              | _ -> ()))
    | Texp_apply (hd, args) -> (
        Hashtbl.replace head_locs (loc_key hd.exp_loc) ();
        match resolve_head hd with
        | None -> ()
        | Some name ->
            f.f_applied <- (name, e.exp_loc) :: f.f_applied;
            if is_span_wrapper name then f.f_has_span <- true;
            if is_ensure name then f.f_has_ensure <- true;
            if is_metric_emit name then
              f.f_metric_emits <- e.exp_loc :: f.f_metric_emits;
            if is_mutex_protect name then
              protected_spans :=
                (e.exp_loc.Location.loc_start.Lexing.pos_cnum,
                 e.exp_loc.Location.loc_end.Lexing.pos_cnum)
                :: !protected_spans;
            (match mutator_of name with
            | Some what -> (
                match
                  List.find_opt
                    (fun (lbl, arg) ->
                      lbl = Asttypes.Nolabel && Option.is_some arg)
                    args
                with
                | Some (_, Some target) ->
                    record_mutation muts_acc what e.exp_loc target
                | _ -> ())
            | None -> ());
            if String.equal (strip_stdlib name) "ignore" then (
              match args with
              | [ (_, Some arg) ] when is_result_ty arg.exp_type ->
                  f.f_discards <-
                    { d_loc = e.exp_loc;
                      d_what = "result value discarded via ignore" }
                    :: f.f_discards
              | _ -> ());
            (match is_pool_combinator name with
            | None -> ()
            | Some comb ->
                let roots = ref [] and cmuts = ref [] in
                List.iter
                  (fun (_, arg) ->
                    match arg with
                    | Some a when is_funarg a.exp_type ->
                        let sub_facts = scan_expr b ctx a in
                        roots := sub_facts.f_edges @ !roots;
                        cmuts := sub_facts.f_mutations @ !cmuts
                    | _ -> ())
                  args;
                f.f_pool_calls <-
                  { pc_loc = e.exp_loc; combinator = comb;
                    closure_roots = List.rev !roots;
                    closure_mutations = List.rev !cmuts }
                  :: f.f_pool_calls))
    | Texp_setfield (target, _, ld, _) ->
        record_mutation muts_acc
          (Printf.sprintf "mutable field %s <-" ld.Types.lbl_name)
          e.exp_loc target
    | Texp_for (id, _, _, _, _, _) ->
        Hashtbl.replace bound (Ident.unique_name id) ()
    | Texp_letmodule (id_opt, _, _, me, _) ->
        Option.iter
          (fun id ->
            match me.mod_desc with
            | Tmod_ident (p, _) ->
                Hashtbl.replace ctx.modstamps (Ident.unique_name id)
                  (canonical_module_parts b ctx p)
            | _ -> ())
          id_opt
    | Texp_match (_, cases, _) ->
        List.iter
          (fun (c : computation case) ->
            match c.c_lhs.pat_desc with
            | Tpat_value v -> (
                let p = (v :> value general_pattern) in
                match p.pat_desc with
                | Tpat_construct (_, cstr, [ arg ], _)
                  when String.equal cstr.Types.cstr_name "Error"
                       && is_result_ty p.pat_type -> (
                    match arg.pat_desc with
                    | Tpat_any ->
                        f.f_discards <-
                          { d_loc = p.pat_loc;
                            d_what =
                              "error payload discarded by wildcard Error \
                               arm" }
                          :: f.f_discards
                    | _ -> ())
                | _ -> ())
            | _ -> ())
          cases
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let pat_hook : type k.
      Tast_iterator.iterator -> k general_pattern -> unit =
   fun sub p ->
    bind_pat p;
    Tast_iterator.default_iterator.pat sub p
  in
  let vb_hook (sub : Tast_iterator.iterator) (vb : value_binding) =
    (match vb.vb_pat.pat_desc with
    | Tpat_any when is_result_ty vb.vb_expr.exp_type ->
        f.f_discards <-
          { d_loc = vb.vb_loc;
            d_what = "result value discarded by a wildcard binding" }
          :: f.f_discards
    | _ -> ());
    Tast_iterator.default_iterator.value_binding sub vb
  in
  let iter =
    { Tast_iterator.default_iterator with
      expr = expr_hook;
      pat = pat_hook;
      value_binding = vb_hook }
  in
  iter.expr iter root;
  (* Mutex.protect spans are discovered while walking; the walk visits
     the combinator application before its argument closures, so the
     span list is complete by the time each write inside is tested. *)
  f.f_mutations <-
    List.rev (List.filter (fun m -> not (in_protected m.mut_loc)) !muts_acc);
  f.f_edges <- List.rev f.f_edges;
  f.f_applied <- List.rev f.f_applied;
  f.f_pool_calls <- List.rev f.f_pool_calls;
  f.f_metric_emits <- List.rev f.f_metric_emits;
  f.f_compare_sites <- List.rev f.f_compare_sites;
  f.f_discards <- List.rev f.f_discards;
  f

(* -------------------------- build --------------------------- *)

let build (units : Cmt_loader.unit_info list) : t =
  let b =
    { b_nodes = Hashtbl.create 512;
      b_values = Hashtbl.create 512;
      b_aliases = Hashtbl.create 64;
      b_decls = Hashtbl.create 256 }
  in
  let ctxs =
    List.map
      (fun info ->
        let ctx =
          { info; binders = Hashtbl.create 64;
            modstamps = Hashtbl.create 16; bodies = [] }
        in
        collect_structure b ctx info.Cmt_loader.canonical
          info.Cmt_loader.structure;
        ctx)
      units
  in
  List.iter
    (fun ctx ->
      List.iter
        (fun (n, body) ->
          let facts = scan_expr b ctx body in
          n.edges <- facts.f_edges;
          n.applied <- facts.f_applied;
          n.mutations <- n.mutations @ facts.f_mutations;
          n.pool_calls <- facts.f_pool_calls;
          n.has_span <- facts.f_has_span;
          n.has_ensure <- facts.f_has_ensure;
          n.metric_emits <- facts.f_metric_emits;
          n.compare_sites <- facts.f_compare_sites;
          n.discards <- n.discards @ facts.f_discards)
        (List.rev ctx.bodies))
    ctxs;
  let order =
    (* polint: allow R2 -- the collected list is fully sorted below;
       the fold order cannot reach the result *)
    Hashtbl.fold (fun _ n acc -> n :: acc) b.b_nodes []
    |> List.sort (fun a b ->
           match String.compare a.file b.file with
           | 0 -> (
               match Int.compare a.line b.line with
               | 0 -> String.compare a.id b.id
               | c -> c)
           | c -> c)
    |> List.map (fun n -> n.id)
  in
  let callers = Hashtbl.create 256 in
  List.iter
    (fun id ->
      match Hashtbl.find_opt b.b_nodes id with
      | None -> ()
      | Some n ->
          List.sort_uniq String.compare (List.map fst n.edges)
          |> List.iter (fun target ->
                 if
                   (not (String.equal target n.id))
                   && Hashtbl.mem b.b_nodes target
                 then
                   Hashtbl.replace callers target
                     (n.id
                     :: Option.value
                          (Hashtbl.find_opt callers target)
                          ~default:[])))
    order;
  { nodes = b.b_nodes; order; values = b.b_values; callers }

(* ------------------------- queries -------------------------- *)

let find t id = Hashtbl.find_opt t.nodes id

let resolve_value_name t name =
  match Hashtbl.find_opt t.values name with
  | Some id -> Some id
  | None -> if Hashtbl.mem t.nodes name then Some name else None

let value_exists t name = Option.is_some (resolve_value_name t name)

let nodes t = List.filter_map (find t) t.order

let callers t id = Option.value (Hashtbl.find_opt t.callers id) ~default:[]

let reach_with_parents t ~skip ~roots =
  let parents = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun r ->
      match resolve_value_name t r with
      | Some id when not (Hashtbl.mem parents id) ->
          if not (skip id) then begin
            Hashtbl.replace parents id None;
            Queue.add id q
          end
      | _ -> ())
    roots;
  while not (Queue.is_empty q) do
    let id = Queue.pop q in
    match find t id with
    | None -> ()
    | Some n ->
        List.iter
          (fun (target, _) ->
            match resolve_value_name t target with
            | Some tid
              when (not (Hashtbl.mem parents tid)) && not (skip tid) ->
                Hashtbl.replace parents tid (Some id);
                Queue.add tid q
            | _ -> ())
          n.edges
  done;
  parents

let frame t id =
  match find t id with
  | Some n -> Printf.sprintf "%s (%s:%d)" n.id n.file n.line
  | None -> id

let chain t ~parents id =
  let rec up acc id =
    match Hashtbl.find_opt parents id with
    | Some (Some parent) -> up (id :: acc) parent
    | Some None | None -> id :: acc
  in
  List.map (frame t) (up [] id)
