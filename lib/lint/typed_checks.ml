(* The interprocedural rules (R7-R10), evaluated over the call graph.

   Everything here consumes the per-node facts Callgraph extracted; no
   typed-tree traversal happens at this layer, which keeps each rule
   small enough to read against its DESIGN.md entry. *)

let line_col (loc : Location.t) =
  ( loc.Location.loc_start.Lexing.pos_lnum,
    loc.Location.loc_start.Lexing.pos_cnum
    - loc.Location.loc_start.Lexing.pos_bol )

let diag ?witness ~(node : Callgraph.node option) ~file ~loc ~rule message =
  ignore node;
  let line, col = line_col loc in
  Diagnostic.v ?witness ~file ~line ~col ~rule:(Rule.to_string rule) ~message ()

(* ------------------------------ R7 ------------------------------ *)

(* Shared mutable state reachable from a closure handed to a Po_par.Pool
   combinator.  Two sources: writes directly inside the closure whose
   target the closure does not bind (captured or global — either way the
   write happens on several domains), and writes in any function
   reachable from the values the closure references. *)
let r7 g =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let emit ~witness ~file ~loc what detail =
    if Rule.applies_to Rule.R7 ~file then begin
      let line, col = line_col loc in
      if not (Hashtbl.mem seen (file, line, col)) then begin
        Hashtbl.add seen (file, line, col) ();
        out :=
          diag ~witness ~node:None ~file ~loc ~rule:Rule.R7
            (Printf.sprintf
               "%s on shared mutable state %s: make it domain-local, use \
                Atomic, key it by Domain.DLS, or allowlist with a \
                justification"
               what detail)
          :: !out
      end
    end
  in
  List.iter
    (fun (n : Callgraph.node) ->
      List.iter
        (fun (pc : Callgraph.pool_call) ->
          let pc_line, _ = line_col pc.pc_loc in
          let call_frame =
            Printf.sprintf "Pool.%s call in %s (%s:%d)" pc.combinator n.id
              n.file pc_line
          in
          List.iter
            (fun (m : Callgraph.mutation) ->
              emit
                ~witness:[ call_frame; "closure body" ]
                ~file:n.file ~loc:m.mut_loc m.what
                (Printf.sprintf "captured by a closure passed to Pool.%s"
                   pc.combinator))
            pc.closure_mutations;
          let parents =
            Callgraph.reach_with_parents g
              ~skip:(fun _ -> false)
              ~roots:(List.map fst pc.closure_roots)
          in
          (* deterministic order: walk nodes in graph order, not hash
             order *)
          List.iter
            (fun (m_node : Callgraph.node) ->
              if Hashtbl.mem parents m_node.id then
                List.iter
                  (fun (m : Callgraph.mutation) ->
                    emit
                      ~witness:
                        (call_frame
                        :: Callgraph.chain g ~parents m_node.id)
                      ~file:m_node.file ~loc:m.mut_loc m.what
                      (Printf.sprintf
                         "in %s, reachable from a closure passed to \
                          Pool.%s"
                         m_node.id pc.combinator))
                  m_node.mutations)
            (Callgraph.nodes g))
        n.pool_calls)
    (Callgraph.nodes g);
  List.rev !out

(* ------------------------------ R8 ------------------------------ *)

(* Discarded convergence evidence.  (a) applying a raising solver when a
   [_checked] companion exists — exempt when the callee already runs an
   ensure_converged-style check, or the calling node does; (b) result
   values dropped outright ([ignore], [let _ =], wildcard [Error _]
   arms; [Error _ as e] is propagation and was never recorded).

   Sub-rule (a) only watches figure/experiment/driver code: inside the
   solver layer, calling the raising variant and threading the outcome
   record (with its iteration/residual evidence) IS the contract, and
   the [_checked] companions exist precisely as the boundary API. *)
let consumes_solver_results file =
  String.starts_with ~prefix:"lib/experiments/" file
  || String.starts_with ~prefix:"bin/" file

let r8 g =
  let out = ref [] in
  List.iter
    (fun (n : Callgraph.node) ->
      if Rule.applies_to Rule.R8 ~file:n.file then begin
        if (not n.has_ensure) && consumes_solver_results n.file then
          List.iter
            (fun (name, loc) ->
              if Callgraph.value_exists g (name ^ "_checked") then
                let callee_checks =
                  match Callgraph.resolve_value_name g name with
                  | Some id -> (
                      match Callgraph.find g id with
                      | Some callee -> callee.has_ensure
                      | None -> false)
                  | None -> false
                in
                if not callee_checks then
                  out :=
                    diag ~node:(Some n) ~file:n.file ~loc ~rule:Rule.R8
                      (Printf.sprintf
                         "call to %s drops its convergence evidence; use \
                          %s_checked or wrap the outcome in \
                          ensure_converged"
                         name name)
                    :: !out)
            n.applied;
        List.iter
          (fun (d : Callgraph.discard) ->
            out :=
              diag ~node:(Some n) ~file:n.file ~loc:d.d_loc ~rule:Rule.R8
                (d.d_what
               ^ ": handle the payload or propagate with 'Error _ as e'")
              :: !out)
          n.discards
      end)
    (Callgraph.nodes g);
  List.rev !out

(* ------------------------------ R9 ------------------------------ *)

let r9 g =
  let out = ref [] in
  List.iter
    (fun (n : Callgraph.node) ->
      if Rule.applies_to Rule.R9 ~file:n.file then
        List.iter
          (fun (cs : Callgraph.compare_site) ->
            out :=
              diag ~node:(Some n) ~file:n.file ~loc:cs.cs_loc ~rule:Rule.R9
                (Printf.sprintf
                   "polymorphic %s instantiated at %s, which contains \
                    float: NaN breaks the total order; use Float.compare \
                    / Float.equal or compare on an explicit key"
                   cs.op cs.ty_rendered)
              :: !out)
          n.compare_sites)
    (Callgraph.nodes g);
  List.rev !out

(* ------------------------------ R10 ----------------------------- *)

(* A node is covered when it opens a span itself, or when it hands a
   span-opening function around without calling it (the registry's
   [guarded] wrapper pattern: the span is applied dynamically through a
   record field, invisible to static edges). *)
let covered g (n : Callgraph.node) =
  n.has_span
  ||
  let applied_names =
    List.sort_uniq String.compare (List.map fst n.applied)
  in
  List.exists
    (fun (name, _) ->
      (not (List.mem name applied_names))
      &&
      match Callgraph.resolve_value_name g name with
      | Some id -> (
          match Callgraph.find g id with
          | Some m -> m.has_span
          | None -> false)
      | None -> false)
    n.edges

let r10 g =
  let out = ref [] in
  List.iter
    (fun (n : Callgraph.node) ->
      if
        Rule.applies_to Rule.R10 ~file:n.file
        && Callgraph.callers g n.id = []
        && not (covered g n)
      then begin
        let parents =
          Callgraph.reach_with_parents g
            ~skip:(fun id ->
              match Callgraph.find g id with
              | Some m -> covered g m
              | None -> false)
            ~roots:[ n.id ]
        in
        let emitter =
          List.find_opt
            (fun (m : Callgraph.node) ->
              Hashtbl.mem parents m.id && m.metric_emits <> [])
            (Callgraph.nodes g)
        in
        match emitter with
        | Some m ->
            let loc =
              { Location.none with
                Location.loc_start =
                  { Lexing.pos_fname = n.file; pos_lnum = n.line;
                    pos_bol = 0; pos_cnum = n.col } }
            in
            out :=
              diag
                ~witness:(Callgraph.chain g ~parents m.id)
                ~node:(Some n) ~file:n.file ~loc ~rule:Rule.R10
                (Printf.sprintf
                   "entry point %s emits metrics (via %s) with no figure \
                    scope on the path: wrap it in Trace.with_span or \
                    Common.with_figure_scope, or register it so the \
                    registry's guard applies"
                   n.id m.id)
              :: !out
        | None -> ()
      end)
    (Callgraph.nodes g);
  List.rev !out

let run g = List.concat [ r7 g; r8 g; r9 g; r10 g ]
