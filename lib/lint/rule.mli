(** The polint rule catalogue.

    Rule identifiers are stable and documented in DESIGN.md; diagnostics,
    inline suppressions and the allowlist file all refer to rules by these
    ids.  R1-R6 are the parsetree rules (checkable from source text
    alone); R7-R10 are the typed rules, which need the compiler's .cmt
    output and the cross-module call graph (see {!Typed_checks}). *)

type id = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10

val all : id list
(** Every rule, in catalogue order. *)

val typed : id list
(** The rules that run on typed trees (R7-R10).  [Lint] routes these to
    the .cmt pass; the remaining rules run on parsetrees. *)

val is_typed : id -> bool

val to_string : id -> string
val of_string : string -> id option

val looks_like_id : string -> bool
(** Whether a token has the shape of a rule id ("R" followed by digits).
    Used by {!Suppress} to turn a directive naming an unknown rule id
    (the silent-typo footgun, e.g. [allow R99]) into a parse
    diagnostic instead of silently ignoring it. *)

val equal : id -> id -> bool

type meta = { id : id; title : string; rationale : string }

val catalogue : meta list
(** One entry per rule: a one-line title and the full rationale. *)

val find : id -> meta

val applies_to : id -> file:string -> bool
(** Whether [id] is in scope for [file], a '/'-separated path relative to
    the repository root.  R1/R3/R9 apply everywhere; R2/R7 everywhere
    outside [test/]; R4 under [lib/] except [lib/report/] (the output
    layer); R5 under [lib/] only; R6 everywhere except [lib/report/]
    (where the crash-safe writer itself lives) and [test/]; R8 everywhere
    except [test/] and [bench/] (benchmarks time raw solver calls by
    design); R10 under [lib/experiments/] only. *)
