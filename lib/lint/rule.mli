(** The polint rule catalogue.

    Rule identifiers are stable and documented in DESIGN.md; diagnostics,
    inline suppressions and the allowlist file all refer to rules by these
    ids. *)

type id = R1 | R2 | R3 | R4 | R5 | R6

val all : id list
(** Every rule, in catalogue order. *)

val to_string : id -> string
val of_string : string -> id option
val equal : id -> id -> bool

type meta = { id : id; title : string; rationale : string }

val catalogue : meta list
(** One entry per rule: a one-line title and the full rationale. *)

val find : id -> meta

val applies_to : id -> file:string -> bool
(** Whether [id] is in scope for [file], a '/'-separated path relative to
    the repository root.  R1/R3 apply everywhere; R2 everywhere outside
    [test/]; R4 under [lib/] except [lib/report/] (the output layer); R5
    under [lib/] only; R6 everywhere except [lib/report/] (where the
    crash-safe writer itself lives) and [test/]. *)
