(** Typed-tree loading for the second analysis stage (R7-R10).

    Dune writes a [.cmt] per compilation unit under
    [_build/<context>/**/.objs/byte]; {!load} reads them all back with
    [Cmt_format] and maps each unit to its repo-relative source file, so
    typed diagnostics land on the same paths as the parsetree pass.
    {!typecheck_impl} runs the compiler's type checker in process on a
    source string — tests use it to lint fixtures that reference the
    repo's real libraries without a dune round-trip. *)

type unit_info = {
  modname : string;  (** compilation unit name, e.g. ["Po_core__Cp_game"] *)
  canonical : string list;  (** display path, e.g. [["Po_core"; "Cp_game"]] *)
  file : string;  (** repo-relative source path *)
  structure : Typedtree.structure;
  comments : (string * Location.t) list;
}

val canonical_of_modname : string -> string list
(** Undo dune's name mangling: ["Po_core__Cp_game"] is
    [["Po_core"; "Cp_game"]], the executable prefix ["Dune__exe__"] is
    dropped, and a generated alias module ["Po_core__"] collapses to
    [["Po_core"]]. *)

val generated : unit_info -> bool
(** A unit with no checkout source (dune's [*.ml-gen] alias modules).
    Such units still feed path resolution but are never diagnostic
    targets. *)

val find_cmts : build_dir:string -> string list
(** All [.cmt] files under [build_dir], sorted. *)

val load : root:string -> build_dir:string -> unit_info list * string list
(** Read every cmt under [build_dir].  Returns the implementation units
    (interfaces and partial trees are skipped) plus human-readable
    notes for cmts that could not be used — stale-build hints for the
    driver, not fatal errors. *)

val typecheck_impl :
  ?load_dirs:string list -> file:string -> string -> unit_info
(** [typecheck_impl ~load_dirs ~file source] parses and type-checks
    [source] in process against the standard library plus the cmi
    directories in [load_dirs].  Raises the compiler's own exceptions
    ([Typetexp.Error], [Typecore.Error], ...) on ill-typed input.  Not
    domain-safe: callers serialize (the compiler's global state —
    [Load_path], the lexer's comment buffer — is process-wide). *)
