(** Cross-module value-level call graph over loaded typed trees.

    One node per top-level value binding (nested modules and functor
    bodies included), named by canonical dotted path
    (["Po_model.Monopoly.price_sweep"]).  Dune's module mangling and
    top-level module aliases — including functor applications — are
    resolved during construction, so within-unit and cross-unit
    references to the same value land on the same node.  Alongside the
    edges, each node carries the facts the typed rules (R7-R10) consume:
    shared-state mutations, pool-combinator call sites with their
    closure roots, float-instantiated polymorphic comparisons,
    discarded results, and whether the node applies a span wrapper, an
    [ensure_converged]-style check or a metrics emitter. *)

type mutation = {
  mut_loc : Location.t;
  what : string;  (** e.g. ["Hashtbl.replace"], ["mutable field x <-"] *)
}

type pool_call = {
  pc_loc : Location.t;
  combinator : string;  (** ["parallel_map"], ["chain_map"], ... *)
  closure_roots : (string * Location.t) list;
      (** top-level values referenced from the closure arguments — the
          reachability roots of the domain-safety rule *)
  closure_mutations : mutation list;
      (** shared-state writes directly inside the closure arguments
          (captured locals included) *)
}

type compare_site = {
  cs_loc : Location.t;
  op : string;
  ty_rendered : string;
}

type discard = { d_loc : Location.t; d_what : string }

type node = {
  id : string;
  file : string;  (** repo-relative *)
  line : int;
  col : int;
  mutable edges : (string * Location.t) list;
  mutable applied : (string * Location.t) list;
  mutable mutations : mutation list;
  mutable pool_calls : pool_call list;
  mutable has_span : bool;
  mutable has_ensure : bool;
  mutable metric_emits : Location.t list;
  mutable compare_sites : compare_site list;
  mutable discards : discard list;
}

type t

val build : Cmt_loader.unit_info list -> t
(** Two passes: collect binders, module aliases and type declarations
    for every unit first (so resolution never depends on load order),
    then scan each binding body for edges and rule facts. *)

val nodes : t -> node list
(** All nodes, ordered by (file, line, id) — deterministic regardless
    of hashing or load order. *)

val find : t -> string -> node option

val resolve_value_name : t -> string -> string option
(** Canonical value name to node id (they differ for secondary binders
    of a tuple pattern and line-qualified shadowed bindings). *)

val value_exists : t -> string -> bool
(** Whether a top-level value of that canonical name exists — the
    [_checked]-companion test of the error-discard rule. *)

val callers : t -> string -> string list
(** Node ids holding an edge to the given node (self-edges excluded) —
    the indegree test of the span-hygiene rule. *)

val reach_with_parents :
  t -> skip:(string -> bool) -> roots:string list -> (string, string option) Hashtbl.t
(** BFS over all edges from [roots] (names resolved leniently; unknown
    names ignored).  Nodes satisfying [skip] are neither entered nor
    expanded.  The result maps every reached node id to its BFS parent
    ([None] for roots) — feed it to {!chain} for witnesses. *)

val frame : t -> string -> string
(** ["Id (file:line)"] for witness chains; the bare id if unknown. *)

val chain : t -> parents:(string, string option) Hashtbl.t -> string -> string list
(** Root-first witness chain for a reached node, rendered with
    {!frame}. *)
