open Po_core

let nus = [| 20.; 50.; 100.; 150.; 200. |]

let generate ?(phi_setting = Po_workload.Ensemble.Coupled_to_beta)
    ?(params = Common.default_params) () =
  let cps = Common.ensemble ~phi:phi_setting params in
  let cs = Po_num.Grid.linspace 0. 1. (max 11 params.Common.sweep_points) in
  (* Serpentine over the (nu, c) grid: warm-start chains run through fixed
     chunks of the boustrophedon order, so the parallel grain is chunks
     (not whole rows) and any [jobs] reproduces the same figure bit for
     bit. *)
  let grid =
    Common.sweep_serpentine params ~rows:nus ~cols:cs
      ~step:(fun prev nu c ->
        let strategy = Strategy.make ~kappa:1. ~c in
        Cp_game.ensure_converged
          ~context:[ ("figure", "fig4") ]
          (Cp_game.solve
             ?init:
               (Option.map
                  (fun (o : Cp_game.outcome) -> o.Cp_game.partition)
                  prev)
             ~nu ~strategy cps))
  in
  let panel proj name =
    ( name,
      Array.to_list
        (Array.mapi
           (fun r points ->
             Po_report.Series.make
               ~label:(Printf.sprintf "nu=%g" nus.(r))
               ~xs:cs
               ~ys:
                 (Array.map
                    (fun o -> proj (Monopoly.point_of_outcome o))
                    points))
           grid) )
  in
  { Common.id = "fig4";
    title = "Monopoly surplus vs premium price c (kappa = 1)";
    x_label = "c";
    panels =
      [ panel (fun (p : Monopoly.price_point) -> p.Monopoly.psi) "Psi";
        panel (fun (p : Monopoly.price_point) -> p.Monopoly.phi) "Phi" ];
    notes =
      [ "Psi = c*nu while the premium class is saturated; collapses at \
         high c";
        "with abundant nu the revenue-optimal c under-utilises capacity \
         and hurts Phi (misalignment)" ] }
