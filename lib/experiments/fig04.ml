open Po_core

let nus = [| 20.; 50.; 100.; 150.; 200. |]

let generate ?(phi_setting = Po_workload.Ensemble.Coupled_to_beta)
    ?(params = Common.default_params) () =
  let cps = Common.ensemble ~phi:phi_setting params in
  let cs = Po_num.Grid.linspace 0. 1. (max 11 params.Common.sweep_points) in
  (* Each capacity's price sweep is a self-contained warm-start chain, so
     the chains are the parallel grain: any [jobs] reproduces the serial
     figure bit for bit. *)
  let sweeps =
    Common.sweep_par params
      (fun nu -> (nu, Monopoly.price_sweep ~kappa:1. ~nu ~cs cps))
      nus
  in
  let panel proj name =
    ( name,
      Array.to_list
        (Array.map
           (fun (nu, points) ->
             Po_report.Series.make
               ~label:(Printf.sprintf "nu=%g" nu)
               ~xs:cs
               ~ys:(Array.map proj points))
           sweeps) )
  in
  { Common.id = "fig4";
    title = "Monopoly surplus vs premium price c (kappa = 1)";
    x_label = "c";
    panels =
      [ panel (fun (p : Monopoly.price_point) -> p.Monopoly.psi) "Psi";
        panel (fun (p : Monopoly.price_point) -> p.Monopoly.phi) "Phi" ];
    notes =
      [ "Psi = c*nu while the premium class is saturated; collapses at \
         high c";
        "with abundant nu the revenue-optimal c under-utilises capacity \
         and hurts Phi (misalignment)" ] }
