open Po_core

(* Validate one class of a game outcome with the packet simulator;
   returns (sim_rate, predicted_rate, max per-CP relative error) in
   packets/s, or None when the class has no members or capacity. *)
let validate_class ~nu_class members =
  if Array.length members = 0 || nu_class <= 0. then None
  else begin
    let report = Po_netsim.Validate.compare ~nu:nu_class members in
    let sim =
      Array.fold_left
        (fun acc (c : Po_netsim.Validate.cp_comparison) ->
          acc +. c.Po_netsim.Validate.simulated_rate)
        0. report.Po_netsim.Validate.per_cp
    in
    let predicted =
      Array.fold_left
        (fun acc (c : Po_netsim.Validate.cp_comparison) ->
          acc +. c.Po_netsim.Validate.predicted_rate)
        0. report.Po_netsim.Validate.per_cp
    in
    Some (sim, predicted, report.Po_netsim.Validate.max_relative_error)
  end

let strategies =
  [| Strategy.make ~kappa:0.3 ~c:0.3;
     Strategy.make ~kappa:0.5 ~c:0.3;
     Strategy.make ~kappa:0.7 ~c:0.3;
     Strategy.make ~kappa:0.5 ~c:0.1;
     Strategy.make ~kappa:0.5 ~c:0.6 |]

let generate ?(params = Common.default_params) () =
  ignore params;
  let cps = Po_workload.Scenario.archetype_mix ~google:3 ~netflix:2 ~skype:2 ~seed:5 () in
  let nu = 0.5 *. Po_workload.Ensemble.saturation_nu cps in
  let results =
    Array.map
      (fun strategy ->
        let o =
          Cp_game.ensure_converged
            ~context:[ ("figure", "pmp") ]
            (Cp_game.solve ~nu ~strategy cps)
        in
        let ordinary =
          validate_class
            ~nu_class:((1. -. Strategy.kappa strategy) *. nu)
            (Partition.ordinary_members o.Cp_game.partition cps)
        in
        let premium =
          validate_class
            ~nu_class:(Strategy.kappa strategy *. nu)
            (Partition.premium_members o.Cp_game.partition cps)
        in
        (strategy, ordinary, premium))
      strategies
  in
  let xs = Array.init (Array.length strategies) (fun i -> float_of_int (i + 1)) in
  let pick f =
    Array.map
      (fun (_, ordinary, premium) ->
        match f ordinary premium with Some v -> v | None -> 0.)
      results
  in
  let rate_panel =
    [ Po_report.Series.make ~label:"ordinary_sim" ~xs
        ~ys:(pick (fun o _ -> Option.map (fun (s, _, _) -> s) o));
      Po_report.Series.make ~label:"ordinary_model" ~xs
        ~ys:(pick (fun o _ -> Option.map (fun (_, p, _) -> p) o));
      Po_report.Series.make ~label:"premium_sim" ~xs
        ~ys:(pick (fun _ p -> Option.map (fun (s, _, _) -> s) p));
      Po_report.Series.make ~label:"premium_model" ~xs
        ~ys:(pick (fun _ p -> Option.map (fun (_, pr, _) -> pr) p)) ]
  in
  let error_panel =
    [ Po_report.Series.make ~label:"ordinary_max_err" ~xs
        ~ys:(pick (fun o _ -> Option.map (fun (_, _, e) -> e) o));
      Po_report.Series.make ~label:"premium_max_err" ~xs
        ~ys:(pick (fun _ p -> Option.map (fun (_, _, e) -> e) p)) ]
  in
  let labels =
    Array.to_list
      (Array.mapi
         (fun i (s, _, _) ->
           Printf.sprintf "x=%d: strategy %s" (i + 1) (Strategy.to_string s))
         results)
  in
  { Common.id = "pmp";
    title =
      "Game equilibrium to packets: per-class AIMD simulation vs class \
       solutions";
    x_label = "strategy";
    panels = [ ("class_rates", rate_panel); ("relative_error", error_panel) ];
    notes =
      labels
      @ [ "each class of the solved CP game is simulated as its own AIMD \
           bottleneck; carried loads match the analytical class \
           equilibria";
          "zeros mark classes that are empty (or capacity-free) at that \
           strategy" ] }
