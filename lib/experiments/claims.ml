open Po_core

type check = {
  claim : string;
  passed : bool;
  detail : string;
}

let of_result ~claim = function
  | Ok () -> { claim; passed = true; detail = "ok" }
  | Error detail -> { claim; passed = false; detail }

(* A non-converged inner solve must not be silently audited as if it
   were an equilibrium: raising solves are wrapped in
   [ensure_converged] and result-typed companions unwrapped here, so
   the failure travels the typed error channel with its claim frame. *)
let checked ~claim = function
  | Ok v -> v
  | Error e ->
      raise
        (Po_guard.Po_error.Error
           (Po_guard.Po_error.add_context [ ("claim", claim) ] e))

(* The claim audits are statements about equilibria, not about scale; a
   few hundred CPs keep them fast while preserving every regime. *)
let audit_ensemble params cap =
  let params = { params with Common.n_cps = min params.Common.n_cps cap } in
  (Common.ensemble params, Po_workload.Ensemble.saturation_nu (Common.ensemble params))

let theorem4 ?(params = Common.default_params) () =
  let cps, sat = audit_ensemble params 300 in
  let kappas = [| 0.; 0.25; 0.5; 0.75; 0.9 |] in
  let combos =
    [ (0.15 *. sat, 0.2); (0.15 *. sat, 0.5); (0.5 *. sat, 0.2);
      (0.5 *. sat, 0.5); (0.9 *. sat, 0.35) ]
  in
  let rec scan = function
    | [] -> Ok ()
    | (nu, c) :: rest -> (
        match Monopoly.check_theorem4 ~tol:1e-6 ~nu ~c ~kappas cps with
        | Ok () -> scan rest
        | Error _ as e -> e)
  in
  of_result ~claim:"Theorem 4: kappa=1 revenue-dominates" (scan combos)

let theorem5 ?(params = Common.default_params) () =
  let cps, sat = audit_ensemble params 120 in
  let cfg =
    Duopoly.config ~nu:(0.5 *. sat)
      ~strategy_i:(Strategy.make ~kappa:1. ~c:0.3)
      ()
  in
  let neutral_phi =
    (Cp_game.ensure_converged
       ~context:[ ("claim", "theorem5") ]
       (Cp_game.solve ~nu:(0.5 *. sat) ~strategy:Strategy.public_option cps))
      .Cp_game.phi
  in
  of_result
    ~claim:"Theorem 5: share-maximising strategy maximises Phi (duopoly)"
    (Duopoly.check_theorem5 ~tol:(0.03 *. neutral_phi) ~config:cfg cps)

let lemma4 ?(params = Common.default_params) () =
  let cps, sat = audit_ensemble params 200 in
  let cfg =
    Oligopoly.config ~nu:(0.5 *. sat)
      [| { Oligopoly.label = "a"; gamma = 0.5;
           strategy = Strategy.make ~kappa:0.4 ~c:0.35 };
         { Oligopoly.label = "b"; gamma = 0.3;
           strategy = Strategy.make ~kappa:0.4 ~c:0.35 };
         { Oligopoly.label = "c"; gamma = 0.2;
           strategy = Strategy.make ~kappa:0.4 ~c:0.35 } |]
  in
  of_result ~claim:"Lemma 4: homogeneous strategies give shares = gammas"
    (Oligopoly.check_lemma4 ~tol:0.02 cfg cps)

let theorem6 ?(params = Common.default_params) () =
  let cps, sat = audit_ensemble params 120 in
  let cfg =
    Oligopoly.config ~nu:(0.45 *. sat)
      [| { Oligopoly.label = "i"; gamma = 0.5;
           strategy = Strategy.public_option };
         { Oligopoly.label = "j"; gamma = 0.5;
           strategy = Strategy.make ~kappa:0.7 ~c:0.3 } |]
  in
  let audit = Oligopoly.theorem6_audit ~i:0 cfg cps in
  let eq = checked ~claim:"theorem6" (Oligopoly.solve_checked cfg cps) in
  let scale = Float.max eq.Oligopoly.phi_star 1e-9 in
  let slack = audit.Oligopoly.epsilon_rivals +. (0.05 *. scale) in
  let passed = audit.Oligopoly.phi_deficit <= slack in
  { claim = "Theorem 6: share best-response is eps-best for Phi";
    passed;
    detail =
      Printf.sprintf
        "phi_deficit=%.4g vs epsilon_rivals=%.4g (+5%% slack %.4g); \
         share_best=%s surplus_best=%s"
        audit.Oligopoly.phi_deficit audit.Oligopoly.epsilon_rivals slack
        (Strategy.to_string audit.Oligopoly.share_best)
        (Strategy.to_string audit.Oligopoly.surplus_best) }

let corollary1 ?(params = Common.default_params) () =
  (* A market-share Nash equilibrium (over a strategy menu) must also be
     a consumer-surplus eps-Nash equilibrium, with eps bounded by the
     rivals' Eq.-9 discontinuity plus solver slack. *)
  let cps, sat = audit_ensemble params 60 in
  let menu =
    Strategy.grid ~kappas:[| 0.; 0.6; 1. |] ~cs:[| 0.2; 0.5 |] ()
  in
  let cfg =
    Oligopoly.homogeneous ~nu:(0.5 *. sat) ~n:2
      ~strategy:Strategy.public_option ()
  in
  let nash_cfg, nash_eq =
    checked ~claim:"corollary1"
      (Oligopoly.market_share_nash_checked ~rounds:4 ~strategies:menu cfg cps)
  in
  let phi_star = nash_eq.Oligopoly.phi_star in
  let worst = ref 0. in
  Array.iteri
    (fun i _ ->
      Array.iter
        (fun s ->
          if not (Strategy.equal s nash_cfg.Oligopoly.isps.(i).Oligopoly.strategy)
          then begin
            let isps = Array.copy nash_cfg.Oligopoly.isps in
            isps.(i) <- { (isps.(i)) with Oligopoly.strategy = s };
            let eq' =
              checked ~claim:"corollary1"
                (Oligopoly.solve_checked ~curve_points:90
                   { nash_cfg with Oligopoly.isps } cps)
            in
            worst := Float.max !worst (eq'.Oligopoly.phi_star -. phi_star)
          end)
        menu)
    nash_cfg.Oligopoly.isps;
  let slack = 0.08 *. Float.max phi_star 1e-9 in
  let passed = !worst <= slack in
  { claim = "Corollary 1: market-share Nash is a consumer-surplus eps-Nash";
    passed;
    detail =
      Printf.sprintf
        "largest Phi* gain from a unilateral deviation: %.4g (allowed \
         slack %.4g, Phi*=%.4g)"
        !worst slack phi_star }

let regime_ordering ?(params = Common.default_params) () =
  let cps, sat = audit_ensemble params 150 in
  (* The neutral >= unregulated leg of the ordering is the paper's
     abundant-capacity claim; at scarce capacity the paper itself notes
     price discrimination can help consumers (Sec. III-E). *)
  let nu = 0.85 *. sat in
  let results = Public_option.compare_regimes ~nu ~levels:2 ~points:7 cps in
  let detail =
    String.concat "; "
      (List.map
         (fun (r : Public_option.regime_result) ->
           Printf.sprintf "%s: Phi=%.4g" r.Public_option.label
             r.Public_option.phi)
         results)
  in
  match Public_option.check_ordering results with
  | Ok () ->
      { claim = "Regime ordering: Phi(PO) >= Phi(neutral) >= Phi(unreg)";
        passed = true; detail }
  | Error e ->
      { claim = "Regime ordering: Phi(PO) >= Phi(neutral) >= Phi(unreg)";
        passed = false; detail = detail ^ " | " ^ e }

let tcp_maxmin ?(params = Common.default_params) () =
  ignore params;
  let cps = Po_workload.Scenario.three_cp () in
  let report = Po_netsim.Validate.compare ~nu:2.5 cps in
  let passed = report.Po_netsim.Validate.max_relative_error < 0.25 in
  { claim = "AIMD simulation matches max-min model (3-CP, congested)";
    passed;
    detail =
      Printf.sprintf "max relative error %.3f, mean %.3f, utilization %.3f"
        report.Po_netsim.Validate.max_relative_error
        report.Po_netsim.Validate.mean_relative_error
        report.Po_netsim.Validate.utilization }

let all ?params () =
  Common.with_figure_scope "claims" (fun () ->
      [ theorem4 ?params (); theorem5 ?params (); lemma4 ?params ();
        theorem6 ?params (); corollary1 ?params (); regime_ordering ?params ();
        tcp_maxmin ?params () ])

let render checks =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "== Claim audits ==\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "[%s] %s\n        %s\n"
           (if c.passed then "PASS" else "FAIL")
           c.claim c.detail))
    checks;
  Buffer.contents buf
