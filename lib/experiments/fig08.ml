open Po_core

let kappas = [| 0.1; 0.5; 0.9 |]
let cs = [| 0.2; 0.5; 0.8 |]

let generate ?(phi_setting = Po_workload.Ensemble.Coupled_to_beta)
    ?(params = Common.default_params) () =
  let cps = Common.ensemble ~phi:phi_setting params in
  let nus =
    Po_num.Grid.linspace 5. 500. (max 9 (params.Common.sweep_points * 2 / 3))
  in
  let combos =
    Array.concat
      (Array.to_list
         (Array.map
            (fun c -> Array.map (fun kappa -> (kappa, c)) kappas)
            cs))
  in
  (* Duopoly sweep points are independent solves: parallelise along the
     capacity axis inside each strategy combo. *)
  let pool = Common.pool params in
  let sweeps =
    Array.map
      (fun (kappa, c) ->
        let cfg =
          Duopoly.config ~nu:nus.(0) ~strategy_i:(Strategy.make ~kappa ~c) ()
        in
        ((kappa, c), Duopoly.capacity_sweep ?pool ~config:cfg ~nus cps))
      combos
  in
  let panel proj name =
    ( name,
      Array.to_list
        (Array.map
           (fun ((kappa, c), eqs) ->
             Po_report.Series.make
               ~label:(Printf.sprintf "kappa=%g,c=%g" kappa c)
               ~xs:nus ~ys:(Array.map proj eqs))
           sweeps) )
  in
  { Common.id = "fig8";
    title =
      "Duopoly vs a Public Option across capacity, strategy grid \
       (kappa, c)";
    x_label = "nu";
    panels =
      [ panel (fun (e : Duopoly.equilibrium) -> e.Duopoly.psi_i) "Psi_I";
        panel (fun (e : Duopoly.equilibrium) -> e.Duopoly.phi) "Phi";
        panel (fun (e : Duopoly.equilibrium) -> e.Duopoly.m_i) "market_share"
      ];
    notes =
      [ "Psi_I collapses to zero shortly after its peak: the Public \
         Option punishes under-utilisation immediately";
        "Phi's growth in nu is nearly independent of ISP I's strategy \
         (competition protects consumers)";
        "scarce nu: differential pricing wins slightly over half the \
         market; abundant nu: at most an equal share" ] }
