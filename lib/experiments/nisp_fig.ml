open Po_core

let generate ?(params = Common.default_params) () =
  let params = { params with Common.n_cps = min params.Common.n_cps 100 } in
  let cps = Common.ensemble params in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  let nu = 0.85 *. sat in
  let menu =
    Strategy.grid
      ~kappas:[| 0.; 0.5; 1. |]
      ~cs:[| 0.1; 0.3; 0.6 |]
      ()
  in
  let counts = [| 1; 2; 3; 4 |] in
  let results =
    Array.map
      (fun n ->
        if n = 1 then begin
          (* A single unregulated ISP: pick the revenue-best strategy from
             the same menu so the comparison is apples to apples. *)
          let best =
            Array.fold_left
              (fun acc s ->
                let o = Cp_game.solve ~nu ~strategy:s cps in
                match acc with
                | Some (_, best_o)
                  when best_o.Cp_game.psi >= o.Cp_game.psi ->
                    acc
                | _ -> Some (s, o))
              None menu
          in
          match best with
          | Some (_, o) ->
              (* The winning outcome feeds the figure, so its converged
                 flag must hold — it used to be hard-coded true here. *)
              let o =
                Cp_game.ensure_converged
                  ~context:[ ("figure", "nisp"); ("isps", "1") ] o
              in
              (o.Cp_game.phi, o.Cp_game.converged)
          | None -> (0., false)
        end
        else begin
          let cfg =
            Oligopoly.homogeneous ~nu ~n ~strategy:Strategy.public_option ()
          in
          let _, eq, converged =
            Oligopoly.market_share_nash ~rounds:4 ~strategies:menu cfg cps
          in
          (eq.Oligopoly.phi_star, converged)
        end)
      counts
  in
  let xs = Array.map float_of_int counts in
  let neutral_phi =
    (Cp_game.solve ~nu ~strategy:Strategy.public_option cps).Cp_game.phi
  in
  { Common.id = "nisp";
    title = "Equilibrium consumer surplus vs number of competing ISPs";
    x_label = "isps";
    panels =
      [ ( "Phi",
          [ Po_report.Series.make ~label:"market-share Nash" ~xs
              ~ys:(Array.map fst results);
            Po_report.Series.make ~label:"full-neutral benchmark" ~xs
              ~ys:(Array.map (fun _ -> neutral_phi) xs) ] ) ];
    notes =
      ([ "n = 1 is the unregulated monopoly (menu-restricted optimum); \
          n >= 2 are market-share Nash equilibria via best-response \
          dynamics over the same strategy menu";
         "competition closes most of the gap to the neutral benchmark \
          without regulation — Sec. VI's 'more ISPs, less need for a \
          public option'" ]
      @ Array.to_list
          (Array.mapi
             (fun i (_, converged) ->
               Printf.sprintf "n=%d best-response dynamics %s" counts.(i)
                 (if converged then "converged" else "hit the round cap"))
             results)) }
