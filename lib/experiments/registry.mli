(** Index of every reproducible experiment, keyed by the paper's figure
    ids (plus the [tcp] extension).  Used by the CLI and the bench
    harness. *)

type entry = {
  id : string;
  description : string;
  generate : ?params:Common.params -> unit -> Common.figure;
}

val entries : entry list
(** In paper order — fig2, fig3, fig4, fig5, fig7, fig8, fig9, fig10,
    fig11, fig12 (figures 1 and 6 are schematic diagrams with no data
    series) — followed by the extensions and ablations: tcp, posize,
    welfare, invest, mm1, pmp, red.

    Every [generate] runs inside {!Common.with_figure_scope} (so
    checkpointed sweeps journal and can resume) and stamps any typed
    error with a [figure] context frame (DESIGN.md §10). *)

val find : string -> entry option
val ids : unit -> string list
