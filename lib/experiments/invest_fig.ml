open Po_core

let generate ?(params = Common.default_params) () =
  let params = { params with Common.n_cps = min params.Common.n_cps 200 } in
  let cps = Common.ensemble params in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  let nus =
    Po_num.Grid.linspace (0.1 *. sat) (1.4 *. sat)
      (max 9 (params.Common.sweep_points / 2))
  in
  let pool = Common.pool params in
  let monopoly =
    Investment.monopoly_revenue_curve ?pool ~levels:2 ~points:15 ~nus cps
  in
  let monopoly_panel =
    [ Po_report.Series.make ~label:"optimised_psi" ~xs:nus
        ~ys:
          (Array.map
             (fun (p : Investment.monopoly_point) -> p.Investment.psi)
             monopoly);
      Po_report.Series.make ~label:"optimal_price" ~xs:nus
        ~ys:
          (Array.map
             (fun (p : Investment.monopoly_point) ->
               p.Investment.optimal_price)
             monopoly);
      Po_report.Series.make ~label:"phi_at_optimum" ~xs:nus
        ~ys:
          (Array.map
             (fun (p : Investment.monopoly_point) -> p.Investment.phi)
             monopoly) ]
  in
  let duopoly_nus =
    Po_num.Grid.linspace (0.3 *. sat) (1.1 *. sat) 5
  in
  let duopoly =
    Investment.duopoly_revenue_curve ?pool ~levels:1 ~points:9
      ~nus:duopoly_nus cps
  in
  let duopoly_panel =
    [ Po_report.Series.make ~label:"optimised_psi_I" ~xs:duopoly_nus
        ~ys:
          (Array.map
             (fun (p : Investment.duopoly_point) -> p.Investment.psi)
             duopoly);
      Po_report.Series.make ~label:"optimal_price" ~xs:duopoly_nus
        ~ys:
          (Array.map
             (fun (p : Investment.duopoly_point) ->
               p.Investment.optimal_price)
             duopoly) ]
  in
  let gammas = [| 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8 |] in
  let competition =
    Investment.competition_share_curve ?pool ~nu:(0.5 *. sat) ~gammas cps
  in
  let competition_panel =
    [ Po_report.Series.make ~label:"market_share" ~xs:gammas
        ~ys:
          (Array.map
             (fun (p : Investment.competition_point) ->
               p.Investment.market_share)
             competition);
      Po_report.Series.make ~label:"capacity_share (Lemma 4)" ~xs:gammas
        ~ys:gammas;
      Po_report.Series.make ~label:"psi" ~xs:gammas
        ~ys:
          (Array.map
             (fun (p : Investment.competition_point) -> p.Investment.psi)
             competition) ]
  in
  { Common.id = "invest";
    title = "Capacity-investment incentives: monopoly vs competition";
    x_label = "nu (monopoly) / gamma (competition)";
    panels =
      [ ("monopoly", monopoly_panel);
        ("duopoly_vs_public_option", duopoly_panel);
        ("competition", competition_panel) ];
    notes =
      [ "monopoly: the optimal premium price falls with capacity and the \
         optimised revenue saturates (Choi-Kim price effect)";
        "duopoly vs a Public Option: optimised revenue declines past its \
         peak — expansion can reduce CP-side revenue (Fig. 7 inversion)";
        "competition: market share tracks the capacity share along the \
         whole curve (Lemma 4), so capacity buys customers" ] }
