open Po_core

let kappas = [| 0.1; 0.5; 0.9 |]
let cs = [| 0.2; 0.5; 0.8 |]

let generate ?(phi_setting = Po_workload.Ensemble.Coupled_to_beta)
    ?(params = Common.default_params) () =
  let cps = Common.ensemble ~phi:phi_setting params in
  let nus =
    Po_num.Grid.linspace 1. 500. (max 11 params.Common.sweep_points)
  in
  let combos =
    Array.concat
      (Array.to_list
         (Array.map
            (fun c -> Array.map (fun kappa -> (kappa, c)) kappas)
            cs))
  in
  (* One warm-start chain per (kappa, c) strategy: parallelise across the
     nine chains, never inside one (see fig04). *)
  let sweeps =
    Common.sweep_par params
      (fun (kappa, c) ->
        let strategy = Strategy.make ~kappa ~c in
        ((kappa, c), Monopoly.capacity_sweep ~strategy ~nus cps))
      combos
  in
  let panel proj name =
    ( name,
      Array.to_list
        (Array.map
           (fun ((kappa, c), outcomes) ->
             Po_report.Series.make
               ~label:(Printf.sprintf "kappa=%g,c=%g" kappa c)
               ~xs:nus
               ~ys:(Array.map proj outcomes))
           sweeps) )
  in
  { Common.id = "fig5";
    title = "Monopoly surplus vs capacity under strategies (kappa, c)";
    x_label = "nu";
    panels =
      [ panel (fun (o : Cp_game.outcome) -> o.Cp_game.psi) "Psi";
        panel (fun (o : Cp_game.outcome) -> o.Cp_game.phi) "Phi" ];
    notes =
      [ "Psi rises linearly while the premium class is saturated, then \
         decays; for small kappa it reaches zero once the ordinary class \
         can serve everyone";
        "higher kappa keeps revenue positive at large nu but depresses \
         Phi below its maximum" ] }
