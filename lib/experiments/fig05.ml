open Po_core

let kappas = [| 0.1; 0.5; 0.9 |]
let cs = [| 0.2; 0.5; 0.8 |]

let generate ?(phi_setting = Po_workload.Ensemble.Coupled_to_beta)
    ?(params = Common.default_params) () =
  let cps = Common.ensemble ~phi:phi_setting params in
  let nus =
    Po_num.Grid.linspace 1. 500. (max 11 params.Common.sweep_points)
  in
  let combos =
    Array.concat
      (Array.to_list
         (Array.map
            (fun c -> Array.map (fun kappa -> (kappa, c)) kappas)
            cs))
  in
  (* Serpentine over the (strategy, nu) grid: each chunk of the
     boustrophedon order is one warm-start chain, so the parallel grain is
     finer than the nine strategy rows and any [jobs] reproduces the same
     figure bit for bit (see fig04). *)
  let grid =
    Common.sweep_serpentine params ~rows:combos ~cols:nus
      ~step:(fun prev (kappa, c) nu ->
        let strategy = Strategy.make ~kappa ~c in
        Cp_game.ensure_converged
          ~context:[ ("figure", "fig5") ]
          (Cp_game.solve
             ?init:
               (Option.map
                  (fun (o : Cp_game.outcome) -> o.Cp_game.partition)
                  prev)
             ~nu ~strategy cps))
  in
  let panel proj name =
    ( name,
      Array.to_list
        (Array.mapi
           (fun r outcomes ->
             let kappa, c = combos.(r) in
             Po_report.Series.make
               ~label:(Printf.sprintf "kappa=%g,c=%g" kappa c)
               ~xs:nus
               ~ys:(Array.map proj outcomes))
           grid) )
  in
  { Common.id = "fig5";
    title = "Monopoly surplus vs capacity under strategies (kappa, c)";
    x_label = "nu";
    panels =
      [ panel (fun (o : Cp_game.outcome) -> o.Cp_game.psi) "Psi";
        panel (fun (o : Cp_game.outcome) -> o.Cp_game.phi) "Phi" ];
    notes =
      [ "Psi rises linearly while the premium class is saturated, then \
         decays; for small kappa it reaches zero once the ordinary class \
         can serve everyone";
        "higher kappa keeps revenue positive at large nu but depresses \
         Phi below its maximum" ] }
