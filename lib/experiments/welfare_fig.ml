open Po_core

let generate ?(params = Common.default_params) () =
  let params = { params with Common.n_cps = min params.Common.n_cps 150 } in
  let cps = Common.ensemble params in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  let nu = 0.85 *. sat in
  let table =
    Welfare.regime_table ?pool:(Common.pool params) ~levels:2 ~points:7 ~nu
      cps
  in
  (* Encode the regimes on an index axis: 1 = unregulated, 2 = neutral,
     3 = public option. *)
  let xs = Array.init (List.length table) (fun i -> float_of_int (i + 1)) in
  let arr = Array.of_list table in
  let series proj label =
    Po_report.Series.make ~label ~xs
      ~ys:(Array.map (fun (_, w) -> proj w) arr)
  in
  let labels =
    Array.to_list (Array.mapi (fun i (name, _) -> Printf.sprintf "x=%d: %s" (i + 1) name) arr)
  in
  { Common.id = "welfare";
    title = "Three-party welfare decomposition per regulatory regime";
    x_label = "regime";
    panels =
      [ ( "decomposition",
          [ series (fun w -> w.Welfare.consumer) "consumer";
            series (fun w -> w.Welfare.isp) "isp";
            series (fun w -> w.Welfare.cp) "cp";
            series (fun w -> w.Welfare.total) "total" ] ) ];
    notes =
      labels
      @ [ "the ISP's premium revenue is a transfer from CPs: total \
           welfare moves only through the allocation";
          "the public option regime recovers (nearly all of) the \
           neutral regime's consumer surplus while letting the \
           commercial ISP keep some CP-side revenue" ] }
