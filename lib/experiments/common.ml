type figure = {
  id : string;
  title : string;
  x_label : string;
  panels : (string * Po_report.Series.t list) list;
  notes : string list;
}

type checkpoint = { dir : string; resume : bool }

type params = {
  n_cps : int;
  seed : int;
  sweep_points : int;
  jobs : int;
  checkpoint : checkpoint option;
  sup : Po_sup.Supervise.policy;
}

(* Observability (DESIGN.md §11).  Sweep and checkpoint counters sit at
   the figure-scope level — one increment per logical sweep/journal
   event, independent of the worker count. *)
let m_sweeps = Po_obs.Metrics.counter "sweep.sweeps"

let m_journalled = Po_obs.Metrics.counter "sweep.chunks_journalled"

let m_replayed = Po_obs.Metrics.counter "sweep.journals_loaded"

let default_params =
  { n_cps = 1000; seed = 42; sweep_points = 33; jobs = 1; checkpoint = None;
    sup = Po_sup.Supervise.default }

let quick_params =
  { n_cps = 120; seed = 42; sweep_points = 9; jobs = 1; checkpoint = None;
    sup = Po_sup.Supervise.default }

(* One pool per process, resized only when [jobs] changes.  Worker
   domains park on a condition variable between sweeps, so keeping the
   pool alive across figures costs nothing; the at_exit handler joins
   them so the process never exits with domains mid-flight. *)
let cached_pool : (int * Po_par.Pool.t) option ref = ref None

let shutdown_pool () =
  match !cached_pool with
  | None -> ()
  | Some (_, pool) ->
      cached_pool := None;
      Po_par.Pool.shutdown pool

let () = at_exit shutdown_pool

let pool params =
  if params.jobs <= 1 then None
  else
    match !cached_pool with
    | Some (jobs, pool) when jobs = params.jobs -> Some pool
    | _ ->
        shutdown_pool ();
        let pool = Po_par.Pool.create ~domains:params.jobs () in
        cached_pool := Some (params.jobs, pool);
        Some pool

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    name

(* ------------------------------------------------------------------ *)
(* Crash-safe sweep checkpointing (DESIGN.md §10)                     *)
(*                                                                    *)
(* Every chunked sweep of the current figure journals each completed  *)
(* chunk to an append-only file keyed by (figure, sweep index, a hash *)
(* of the sweep geometry and the scenario parameters).  A resumed run *)
(* replays journalled chunks through the [cached] hook of the chunked *)
(* combinators — the chunk layout is a pure function of the input     *)
(* length and [chunk_size], never of [jobs], so a journal written     *)
(* under any worker count resumes bit-identically under any other.    *)
(* ------------------------------------------------------------------ *)

(* The figure currently generating: its id, a per-figure sweep counter
   (figures call their sweeps in a fixed order, so the counter is a
   stable coordinate), and the journal files the figure has touched
   (removed on success).  Set by {!with_figure_scope}. *)
type scope_state = {
  figure : string;
  sweep_counter : int ref;
  journals : string list ref;
}

let scope : scope_state option ref = ref None

let with_figure_scope figure f =
  let st = { figure; sweep_counter = ref 0; journals = ref [] } in
  scope := Some st;
  Fun.protect
    ~finally:(fun () -> scope := None)
    (fun () ->
      let result =
        Po_obs.Trace.with_span ~args:[ ("figure", figure) ] ("figure:" ^ figure)
          f
      in
      (* Success: the figure's journals have served their purpose. *)
      List.iter Po_report.Writer.remove_if_exists !(st.journals);
      result)

let hex_encode s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else
    match
      String.init (n / 2) (fun i ->
          Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))
    with
    | decoded -> Some decoded
    | exception (Failure _ | Invalid_argument _) -> None

(* Serialised appends: [on_chunk] fires concurrently from several
   domains, and interleaved writes would tear journal lines. *)
let journal_mutex = Mutex.create ()

(* FNV-1a 64-bit over a string — the per-line integrity check of the
   journal format.  Not cryptographic; it only needs to catch torn
   appends and bit rot, where any corruption almost surely changes the
   digest. *)
let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

(* Journal line format v2: [v2 <chunk> <len> <fnv64-hex> <hex(Marshal)>].
   [len] is the hex payload's length and the digest covers the hex
   payload, so a line torn anywhere — mid-payload or mid-prefix — fails
   validation before [Marshal.from_string] ever runs on it. *)
let journal_line ci r =
  let hex = hex_encode (Marshal.to_string r []) in
  Printf.sprintf "v2 %d %d %016Lx %s" ci (String.length hex) (fnv64 hex) hex

let parse_journal_line line =
  match String.split_on_char ' ' line with
  | [ "v2"; ci; len; sum; hex ] -> (
      match
        (int_of_string_opt ci, int_of_string_opt len,
         Int64.of_string_opt ("0x" ^ sum))
      with
      | Some ci, Some len, Some sum
        when len = String.length hex && Int64.equal sum (fnv64 hex) -> (
          match hex_decode hex with
          | Some data -> (
              (* Guarded by the digest, but keep the catches: a future
                 format bump could reuse the line shape. *)
              match Marshal.from_string data 0 with
              | v -> Some (ci, v)
              | exception (Failure _ | Invalid_argument _) -> None)
          | None -> None)
      | _ -> None)
  | _ -> None

let append_chunk path ci r =
  Po_obs.Metrics.incr m_journalled;
  Po_obs.Trace.instant ~args:[ ("chunk", string_of_int ci) ] "checkpoint";
  let line = journal_line ci r in
  Mutex.lock journal_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock journal_mutex)
    (fun () -> Po_report.Writer.append_line ~path line)

(* Journal load with torn-tail truncation: appends are atomic up to a
   crash, so only a {e suffix} of the file can be damaged.  Lines are
   validated in order (length prefix + FNV-1a digest, see
   {!journal_line}) and loading stops at the first bad one; everything
   after it is discarded and the file is rewritten to the surviving
   prefix, so later appends extend a clean journal instead of
   interleaving with the wreckage.  Lost chunks simply recompute —
   the file name's geometry hash plus the length check inside the
   chunked combinators remain the outer integrity guards. *)
let load_journal path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let tbl = Hashtbl.create 16 in
    let good = Buffer.create 256 in
    let torn = ref false in
    (try
       while not !torn do
         let line = input_line ic in
         match parse_journal_line line with
         | Some (ci, v) ->
             Hashtbl.replace tbl ci v;
             Buffer.add_string good line;
             Buffer.add_char good '\n'
         | None -> torn := true
       done
     with End_of_file -> ());
    close_in ic;
    if !torn then begin
      Po_guard.Warnings.emit
        (Printf.sprintf
           "Checkpoint journal %s has a torn or corrupt tail; truncated to \
            the last %d valid line(s)"
           path (Hashtbl.length tbl));
      Po_report.Writer.write_atomic ~path (Buffer.contents good)
    end;
    Some tbl
  end

let journal_path params ~figure ~sweep ~n ~chunk_size dir =
  (* [jobs] is deliberately absent: a journal written under any worker
     count must resume under any other. *)
  let hash =
    Hashtbl.hash
      ( params.n_cps, params.seed, params.sweep_points, n, chunk_size,
        figure, sweep )
  in
  Filename.concat dir
    (Printf.sprintf "%s__sweep%d__%08x.journal" (sanitize figure) sweep hash)

(* The [cached]/[on_chunk] hooks for the next sweep of the current
   figure, or [(None, None)] when checkpointing is off or no figure
   scope is active (library callers outside the registry). *)
let journal_hooks params ~n ~chunk_size =
  match (params.checkpoint, !scope) with
  | Some cp, Some st ->
      let sweep = !(st.sweep_counter) in
      incr st.sweep_counter;
      let path =
        journal_path params ~figure:st.figure ~sweep ~n ~chunk_size cp.dir
      in
      st.journals := path :: !(st.journals);
      if not cp.resume then Po_report.Writer.remove_if_exists path;
      let cached =
        if cp.resume then
          Option.map
            (fun tbl ->
              Po_obs.Metrics.incr m_replayed;
              fun ci -> Hashtbl.find_opt tbl ci)
            (load_journal path)
        else None
      in
      (cached, Some (fun ci r -> append_chunk path ci r))
  | _ -> (None, None)

let default_chunk = 16

let sweep_par ?(chunk_size = default_chunk) params f arr =
  Po_obs.Metrics.incr m_sweeps;
  let cached, on_chunk =
    journal_hooks params ~n:(Array.length arr) ~chunk_size
  in
  Po_obs.Trace.with_span
    ~args:[ ("points", string_of_int (Array.length arr)) ]
    "sweep"
    (fun () ->
      Po_par.Pool.chunk_map ~chunk_size ~sup:params.sup ?cached ?on_chunk
        (pool params) ~f arr)

let sweep_chained ?(chunk_size = default_chunk) params ~step arr =
  Po_obs.Metrics.incr m_sweeps;
  let cached, on_chunk =
    journal_hooks params ~n:(Array.length arr) ~chunk_size
  in
  Po_obs.Trace.with_span
    ~args:[ ("points", string_of_int (Array.length arr)) ]
    "sweep_chained"
    (fun () ->
      Po_par.Pool.chain_map ~chunk_size ~sup:params.sup ?cached ?on_chunk
        (pool params) ~step arr)

let sweep_serpentine ?chunk_size params ~rows ~cols ~step =
  let n_rows = Array.length rows and n_cols = Array.length cols in
  if n_rows = 0 || n_cols = 0 then Array.make n_rows [||]
  else begin
    (* Boustrophedon flat order: row 0 left-to-right, row 1 right-to-left,
       ... — consecutive flat positions are always adjacent grid points,
       including across row boundaries, so warm-start chains stay warm
       through the whole grid instead of restarting every row. *)
    let serp r j = if r mod 2 = 0 then j else n_cols - 1 - j in
    let flat =
      Array.init (n_rows * n_cols) (fun k ->
          let r = k / n_cols in
          (r, serp r (k mod n_cols)))
    in
    let results =
      sweep_chained ?chunk_size params
        ~step:(fun prev (r, j) -> step prev rows.(r) cols.(j))
        flat
    in
    (* Scatter back to row-major: the value of (row r, col j) sits at flat
       position r * n_cols + serp r j. *)
    Array.init n_rows (fun r ->
        Array.init n_cols (fun j -> results.((r * n_cols) + serp r j)))
  end

let ensemble ?phi params =
  Po_workload.Ensemble.paper_ensemble ~n:params.n_cps ?phi
    ?pool:(pool params) ~seed:params.seed ()

let render ?(plots = true) figure =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "== %s: %s ==\n" figure.id figure.title);
  List.iter
    (fun (panel_name, series) ->
      Buffer.add_string buf (Printf.sprintf "\n-- %s --\n" panel_name);
      Buffer.add_string buf
        (Po_report.Table.of_series ~precision:4 ~x_header:figure.x_label
           series);
      if plots then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf
          (Po_report.Asciiplot.render ~width:64 ~height:14 series)
      end)
    figure.panels;
  if figure.notes <> [] then begin
    Buffer.add_string buf "\nNotes:\n";
    List.iter
      (fun note -> Buffer.add_string buf (Printf.sprintf "  - %s\n" note))
      figure.notes
  end;
  Buffer.contents buf

let csv_files ~dir figure =
  List.map
    (fun (panel_name, series) ->
      let path =
        Filename.concat dir
          (Printf.sprintf "%s_%s.csv" figure.id (sanitize panel_name))
      in
      Po_report.Csv.write_file ~path
        (Po_report.Csv.of_series ~x_header:figure.x_label series);
      path)
    figure.panels
