type figure = {
  id : string;
  title : string;
  x_label : string;
  panels : (string * Po_report.Series.t list) list;
  notes : string list;
}

type params = {
  n_cps : int;
  seed : int;
  sweep_points : int;
  jobs : int;
}

let default_params = { n_cps = 1000; seed = 42; sweep_points = 33; jobs = 1 }
let quick_params = { n_cps = 120; seed = 42; sweep_points = 9; jobs = 1 }

(* One pool per process, resized only when [jobs] changes.  Worker
   domains park on a condition variable between sweeps, so keeping the
   pool alive across figures costs nothing; the at_exit handler joins
   them so the process never exits with domains mid-flight. *)
let cached_pool : (int * Po_par.Pool.t) option ref = ref None

let shutdown_pool () =
  match !cached_pool with
  | None -> ()
  | Some (_, pool) ->
      cached_pool := None;
      Po_par.Pool.shutdown pool

let () = at_exit shutdown_pool

let pool params =
  if params.jobs <= 1 then None
  else
    match !cached_pool with
    | Some (jobs, pool) when jobs = params.jobs -> Some pool
    | _ ->
        shutdown_pool ();
        let pool = Po_par.Pool.create ~domains:params.jobs () in
        cached_pool := Some (params.jobs, pool);
        Some pool

let sweep_par params f arr =
  match pool params with
  | None -> Array.map f arr
  | Some pool -> Po_par.Pool.parallel_map pool f arr

let sweep_chained ?chunk_size params ~step arr =
  Po_par.Pool.chain_map ?chunk_size (pool params) ~step arr

let sweep_serpentine ?chunk_size params ~rows ~cols ~step =
  let n_rows = Array.length rows and n_cols = Array.length cols in
  if n_rows = 0 || n_cols = 0 then Array.make n_rows [||]
  else begin
    (* Boustrophedon flat order: row 0 left-to-right, row 1 right-to-left,
       ... — consecutive flat positions are always adjacent grid points,
       including across row boundaries, so warm-start chains stay warm
       through the whole grid instead of restarting every row. *)
    let serp r j = if r mod 2 = 0 then j else n_cols - 1 - j in
    let flat =
      Array.init (n_rows * n_cols) (fun k ->
          let r = k / n_cols in
          (r, serp r (k mod n_cols)))
    in
    let results =
      Po_par.Pool.chain_map ?chunk_size (pool params)
        ~step:(fun prev (r, j) -> step prev rows.(r) cols.(j))
        flat
    in
    (* Scatter back to row-major: the value of (row r, col j) sits at flat
       position r * n_cols + serp r j. *)
    Array.init n_rows (fun r ->
        Array.init n_cols (fun j -> results.((r * n_cols) + serp r j)))
  end

let ensemble ?phi params =
  Po_workload.Ensemble.paper_ensemble ~n:params.n_cps ?phi
    ?pool:(pool params) ~seed:params.seed ()

let render ?(plots = true) figure =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "== %s: %s ==\n" figure.id figure.title);
  List.iter
    (fun (panel_name, series) ->
      Buffer.add_string buf (Printf.sprintf "\n-- %s --\n" panel_name);
      Buffer.add_string buf
        (Po_report.Table.of_series ~precision:4 ~x_header:figure.x_label
           series);
      if plots then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf
          (Po_report.Asciiplot.render ~width:64 ~height:14 series)
      end)
    figure.panels;
  if figure.notes <> [] then begin
    Buffer.add_string buf "\nNotes:\n";
    List.iter
      (fun note -> Buffer.add_string buf (Printf.sprintf "  - %s\n" note))
      figure.notes
  end;
  Buffer.contents buf

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    name

let csv_files ~dir figure =
  List.map
    (fun (panel_name, series) ->
      let path =
        Filename.concat dir
          (Printf.sprintf "%s_%s.csv" figure.id (sanitize panel_name))
      in
      Po_report.Csv.write_file ~path
        (Po_report.Csv.of_series ~x_header:figure.x_label series);
      path)
    figure.panels
