type entry = {
  id : string;
  description : string;
  generate : ?params:Common.params -> unit -> Common.figure;
}

(* Every generator runs inside its figure scope (checkpoint journals,
   DESIGN.md §10) and stamps typed errors with the figure id. *)
let guarded entry =
  { entry with
    generate =
      (fun ?params () ->
        Common.with_figure_scope entry.id (fun () ->
            Po_guard.Po_error.with_context
              [ ("figure", entry.id) ]
              (fun () -> entry.generate ?params ()))) }

let entries =
  [ { id = "fig2"; description = "demand family d(omega) for various beta";
      generate = (fun ?params () -> Fig02.generate ?params ()) };
    { id = "fig3";
      description = "3-CP throughput & demand vs capacity under max-min";
      generate = (fun ?params () -> Fig03.generate ?params ()) };
    { id = "fig4"; description = "monopoly Psi & Phi vs price c (kappa=1)";
      generate = (fun ?params () -> Fig04.generate ?params ()) };
    { id = "fig5";
      description = "monopoly Psi & Phi vs capacity, strategy grid";
      generate = (fun ?params () -> Fig05.generate ?params ()) };
    { id = "fig7";
      description = "duopoly vs Public Option: m_I, Psi_I, Phi vs c_I";
      generate = (fun ?params () -> Fig07.generate ?params ()) };
    { id = "fig8";
      description = "duopoly vs Public Option across capacity, strategy grid";
      generate = (fun ?params () -> Fig08.generate ?params ()) };
    { id = "fig9"; description = "appendix: fig4's Phi, independent phi";
      generate = (fun ?params () -> Appendix.fig9 ?params ()) };
    { id = "fig10"; description = "appendix: fig5's Phi, independent phi";
      generate = (fun ?params () -> Appendix.fig10 ?params ()) };
    { id = "fig11"; description = "appendix: fig7, independent phi";
      generate = (fun ?params () -> Appendix.fig11 ?params ()) };
    { id = "fig12"; description = "appendix: fig8, independent phi";
      generate = (fun ?params () -> Appendix.fig12 ?params ()) };
    { id = "tcp";
      description = "extension: AIMD simulation vs max-min model";
      generate = (fun ?params () -> Tcp_fig.generate ?params ()) };
    { id = "posize";
      description = "extension: how much capacity the Public Option needs";
      generate = (fun ?params () -> Po_sizing_fig.generate ?params ()) };
    { id = "welfare";
      description = "extension: three-party welfare decomposition per regime";
      generate = (fun ?params () -> Welfare_fig.generate ?params ()) };
    { id = "invest";
      description = "extension: capacity-investment incentives";
      generate = (fun ?params () -> Invest_fig.generate ?params ()) };
    { id = "mm1";
      description = "ablation: closed-loop max-min vs open-loop M/M/1";
      generate = (fun ?params () -> Mm1_fig.generate ?params ()) };
    { id = "pmp";
      description = "extension: per-class packet validation of game outcomes";
      generate = (fun ?params () -> Pmp_fig.generate ?params ()) };
    { id = "red";
      description = "ablation: droptail vs RED queueing";
      generate = (fun ?params () -> Red_fig.generate ?params ()) };
    { id = "hetero";
      description = "ablation: heavy-tailed (Zipf/Pareto) workload";
      generate = (fun ?params () -> Hetero_fig.generate ?params ()) };
    { id = "nisp";
      description = "extension: consumer surplus vs number of ISPs";
      generate = (fun ?params () -> Nisp_fig.generate ?params ()) };
    { id = "tandem";
      description = "extension: tandem backbone+last-mile vs single bottleneck";
      generate = (fun ?params () -> Tandem_fig.generate ?params ()) };
    { id = "xl";
      description = "scale tier: equilibrium & surplus vs population size (SoA)";
      generate = (fun ?params () -> Xl_fig.generate ?params ()) } ]
  |> List.map guarded

let find id = List.find_opt (fun e -> e.id = id) entries
let ids () = List.map (fun e -> e.id) entries
