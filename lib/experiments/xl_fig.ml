open Po_model

(* A solver failure at one population size must not masquerade as a
   figure-level crash without its scale attached. *)
let checked ~n = function
  | Ok v -> v
  | Error e ->
      raise
        (Po_guard.Po_error.Error
           (Po_guard.Po_error.add_context [ ("n", string_of_int n) ] e))

let generate ?(params = Common.default_params) () =
  (* Two decades of population growth above the configured scale, log
     spaced; quick params (120 CPs) top out at 12k, the paper's scale
     (1000) at 100k.  Capacity is anchored to each population's own
     saturation point so every size sits in the same congestion regime. *)
  let base = max 10 params.Common.n_cps in
  let sizes = [| base; 3 * base; 10 * base; 30 * base; 100 * base |] in
  let fracs = [| 0.3; 0.6 |] in
  let rows =
    Array.map
      (fun n ->
        let soa =
          Po_workload.Ensemble.paper_ensemble_soa ~n
            ?pool:(Common.pool params) ~seed:params.Common.seed ()
        in
        let sat = Cp_soa.saturation_nu soa in
        let fn = float_of_int n in
        Array.map
          (fun frac ->
            let sol =
              checked ~n (Equilibrium.solve_soa_checked ~nu:(frac *. sat) soa)
            in
            ( sol.Equilibrium.cap,
              sol.Equilibrium.per_capita_rate /. fn,
              Surplus.consumer_soa soa sol /. fn ))
          fracs)
      sizes
  in
  let xs = Array.map float_of_int sizes in
  let panel proj name =
    ( name,
      Array.to_list
        (Array.mapi
           (fun k frac ->
             Po_report.Series.make
               ~label:(Printf.sprintf "nu=%.1f*sat" frac)
               ~xs
               ~ys:(Array.map (fun row -> proj row.(k)) rows))
           fracs) )
  in
  { Common.id = "xl";
    title =
      "Scale tier: equilibrium cap, per-CP rate and surplus vs population \
       size (SoA solver)";
    x_label = "n (CPs, log spaced)";
    panels =
      [ panel (fun (cap, _, _) -> cap) "cap";
        panel (fun (_, rate, _) -> rate) "rate_per_cp";
        panel (fun (_, _, phi) -> phi) "Phi_per_cp" ];
    notes =
      [ "per-CP quantities self-average: the iid ensemble makes cap, \
         rate/n and Phi/n converge as n grows, so the paper's 1000-CP \
         evaluation is already near the large-population limit";
        "populations are nested prefixes of one split-stream draw \
         (DESIGN.md §12), so successive sizes differ only by the CPs \
         appended, not by resampling";
        "every point is a single cold SoA solve; the xl bench tier \
         (bench --xl) pins the O(n log n) cost of these solves up to \
         n = 10^6" ] }
