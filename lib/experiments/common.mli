(** Shared plumbing for the figure-reproduction experiments.

    Every experiment module produces a {!figure}: a set of named panels,
    each holding the series the corresponding paper figure plots.  The
    bench harness renders them as tables and ASCII plots and writes one
    CSV per panel. *)

type figure = {
  id : string;  (** e.g. ["fig4"] *)
  title : string;
  x_label : string;
  panels : (string * Po_report.Series.t list) list;
  notes : string list;  (** observations to compare against the paper *)
}

type checkpoint = {
  dir : string;  (** directory holding the sweep journal files *)
  resume : bool;
      (** [true] replays journalled chunks from a previous (possibly
          crashed) run; [false] discards any stale journal at each
          sweep start *)
}

type params = {
  n_cps : int;  (** ensemble size *)
  seed : int;
  sweep_points : int;  (** resolution of the swept axis *)
  jobs : int;
      (** domains used for sweep evaluation; [1] keeps every figure on
          the serial code path.  Any value produces bit-identical
          figures (see {!Po_par.Pool}). *)
  checkpoint : checkpoint option;
      (** when set, chunked sweeps journal completed chunks so an
          interrupted figure can resume ({!with_figure_scope});
          [None] (the library default) journals nothing *)
  sup : Po_sup.Supervise.policy;
      (** supervision policy threaded to every chunked sweep
          (DESIGN.md §13): deadline/cancellation budget, bounded
          deterministic retries, circuit breaker and per-chunk
          watchdog.  The default ({!Po_sup.Supervise.default}) is
          inactive — sweeps behave exactly as before the supervision
          layer existed. *)
}

val default_params : params
(** The paper's scale: 1000 CPs, 33-point sweeps, serial. *)

val quick_params : params
(** Reduced scale for tests and timing benches: 120 CPs, 9-point
    sweeps, serial. *)

val pool : params -> Po_par.Pool.t option
(** The process-wide domain pool for [params.jobs], or [None] when
    [jobs <= 1].  The pool is cached across calls and resized only when
    [jobs] changes; it is shut down automatically at exit. *)

val with_figure_scope : string -> (unit -> 'a) -> 'a
(** [with_figure_scope id f] runs [f] with [id] as the active figure
    scope: each chunked sweep inside [f] gets a stable sweep index and —
    when [params.checkpoint] is set — a journal file named
    [<figure>__sweep<k>__<hash>.journal] under [checkpoint.dir], whose
    hash covers the scenario parameters and the sweep geometry (but
    never [jobs]: a journal written under any worker count resumes
    under any other).  Completed chunks are appended as they finish
    ([v2 <chunk> <len> <fnv64> <hex(Marshal)>] lines, each carrying a
    length prefix and an FNV-1a 64 digest of its payload; on load the
    journal is read until the first invalid line, the torn or corrupt
    tail is discarded with a {!Po_guard.Warnings} entry, and the file
    is rewritten to the surviving prefix); with
    [checkpoint.resume] journalled chunks are replayed instead of
    recomputed, bit-identically.  On success the figure's journals are
    removed; on an exception they are kept for a later [--resume].
    The registry wraps every generator in this. *)

val sweep_par : ?chunk_size:int -> params -> ('a -> 'b) -> 'a array -> 'b array
(** [sweep_par params f arr] maps [f] over [arr] through {!pool} in
    fixed chunks of [chunk_size] (default 16) elements
    ({!Po_par.Pool.chunk_map}) — serial when [jobs <= 1].  [f] must be
    pure; results are in input order either way.  Chunks journal under
    an active figure scope (see {!with_figure_scope}). *)

val sweep_chained :
  ?chunk_size:int -> params -> step:('b option -> 'a -> 'b) -> 'a array ->
  'b array
(** {!Po_par.Pool.chain_map} through {!pool}: a 1-D sweep evaluated in
    fixed chunks of warm-start chains ([step] gets the previous grid
    point's result within a chunk, [None] at chunk starts).  The chunk
    layout is independent of [jobs], so any value reproduces the same
    figure bit for bit.  Chunks journal under an active figure scope
    (see {!with_figure_scope}). *)

val sweep_serpentine :
  ?chunk_size:int -> params -> rows:'a array -> cols:'c array ->
  step:('b option -> 'a -> 'c -> 'b) -> 'b array array
(** 2-D sweep over [rows x cols] in boustrophedon order (row 0
    left-to-right, row 1 right-to-left, ...), chained through
    {!sweep_chained} so warm starts survive row boundaries — consecutive
    flat positions are always adjacent grid points.  Returns results in
    row-major order: [(result.(r)).(j)] is [step prev rows.(r) cols.(j)].
    Same determinism contract as {!sweep_chained}. *)

val ensemble : ?phi:Po_workload.Ensemble.phi_setting -> params -> Po_model.Cp.t array

val render : ?plots:bool -> figure -> string
(** Tables (one per panel) and optional ASCII plots. *)

val csv_files : dir:string -> figure -> string list
(** Write one CSV per panel under [dir]; returns the paths written. *)
