(** Scale tier [xl]: equilibrium quantities as the population grows.

    The paper evaluates at 1000 CPs; this figure sweeps population size
    over two decades (up to 100x the configured scale) on the
    structure-of-arrays solver path (DESIGN.md §12) and plots the
    equilibrium water level, per-CP per-capita rate and per-CP consumer
    surplus at fixed fractions of each population's saturation capacity.
    The per-CP quantities visibly converge — the finite-n evaluation in
    the paper is representative of the large-market limit. *)

val generate : ?params:Common.params -> unit -> Common.figure
