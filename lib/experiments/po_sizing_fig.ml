open Po_core

let generate ?(params = Common.default_params) () =
  (* The best-response grid makes each point expensive; a mid-sized
     ensemble preserves the shape. *)
  let params = { params with Common.n_cps = min params.Common.n_cps 150 } in
  let cps = Common.ensemble params in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  let nu = 0.85 *. sat in
  let po_shares = [| 0.05; 0.1; 0.2; 0.3; 0.4; 0.5 |] in
  let eff =
    Po_sizing.effectiveness ?pool:(Common.pool params) ~levels:2 ~points:7
      ~nu ~po_shares cps
  in
  let xs = po_shares in
  let of_field f = Array.map f eff.Po_sizing.sweep in
  let const label value =
    Po_report.Series.make ~label ~xs ~ys:(Array.map (fun _ -> value) xs)
  in
  let phi_panel =
    [ Po_report.Series.make ~label:"Phi(public option)" ~xs
        ~ys:(of_field (fun p -> p.Po_sizing.phi));
      const "Phi(neutral regulation)" eff.Po_sizing.phi_neutral;
      const "Phi(unregulated)" eff.Po_sizing.phi_unregulated ]
  in
  let market_panel =
    [ Po_report.Series.make ~label:"commercial_share" ~xs
        ~ys:(of_field (fun p -> p.Po_sizing.commercial_share));
      Po_report.Series.make ~label:"commercial_psi" ~xs
        ~ys:(of_field (fun p -> p.Po_sizing.psi_commercial)) ]
  in
  let note_min =
    match eff.Po_sizing.minimum_effective_share with
    | Some share ->
        Printf.sprintf
          "smallest swept PO share already beating neutral regulation: %g"
          share
    | None -> "no swept PO share beats neutral regulation (unexpected)"
  in
  { Common.id = "posize";
    title = "Sizing the Public Option (abundant capacity, 0.85 saturation)";
    x_label = "po_share";
    panels = [ ("Phi", phi_panel); ("commercial", market_panel) ];
    notes =
      [ note_min;
        "the paper's Sec. VI conjecture: a small safety-net slice already \
         disciplines the commercial ISP" ] }
