open Po_core

let nus = [| 20.; 100.; 150.; 200. |]

let generate ?(phi_setting = Po_workload.Ensemble.Coupled_to_beta)
    ?(params = Common.default_params) () =
  let cps = Common.ensemble ~phi:phi_setting params in
  let cs = Po_num.Grid.linspace 0. 1. (max 11 params.Common.sweep_points) in
  (* Duopoly sweep points are independent solves, so the price axis is
     the parallel grain (more points than capacities). *)
  let pool = Common.pool params in
  let sweeps =
    Array.map
      (fun nu ->
        let cfg =
          Duopoly.config ~nu ~strategy_i:(Strategy.make ~kappa:1. ~c:0.) ()
        in
        (nu, Duopoly.price_sweep ?pool ~kappa_i:1. ~config:cfg ~cs cps))
      nus
  in
  let panel proj name =
    ( name,
      Array.to_list
        (Array.map
           (fun (nu, eqs) ->
             Po_report.Series.make
               ~label:(Printf.sprintf "nu=%g" nu)
               ~xs:cs ~ys:(Array.map proj eqs))
           sweeps) )
  in
  { Common.id = "fig7";
    title =
      "Duopoly vs a Public Option: market share and surplus vs c_I \
       (kappa_I = 1)";
    x_label = "c_I";
    panels =
      [ panel (fun (e : Duopoly.equilibrium) -> e.Duopoly.m_i) "market_share";
        panel (fun (e : Duopoly.equilibrium) -> e.Duopoly.psi_i) "Psi_I";
        panel (fun (e : Duopoly.equilibrium) -> e.Duopoly.phi) "Phi" ];
    notes =
      [ "m_I stays slightly above 1/2 while ISP I's class is saturated, \
         then collapses (competition disciplines pricing)";
        "Psi_I peaks lower at nu=200 than nu=150: capacity expansion can \
         reduce CP-side revenue under kappa=1";
        "Phi stays positive at c_I -> 1: consumers fall back to the \
         Public Option" ] }
