open Po_core

let generate ?(params = Common.default_params) () =
  let cps =
    Po_workload.Ensemble.heavy_tailed_ensemble ~n:params.Common.n_cps
      ?pool:(Common.pool params) ~seed:params.Common.seed ()
  in
  let sat = Po_workload.Ensemble.saturation_nu cps in
  let cs = Po_num.Grid.linspace 0. 1. (max 11 params.Common.sweep_points) in
  let fracs = [| 0.15; 0.5; 0.85 |] in
  (* As in fig04: one warm-start chain per capacity fraction. *)
  let sweeps =
    Common.sweep_par params
      (fun frac ->
        (frac, Monopoly.price_sweep ~kappa:1. ~nu:(frac *. sat) ~cs cps))
      fracs
  in
  let panel proj name =
    ( name,
      Array.to_list
        (Array.map
           (fun (frac, points) ->
             Po_report.Series.make
               ~label:(Printf.sprintf "nu=%.2f*sat" frac)
               ~xs:cs ~ys:(Array.map proj points))
           sweeps) )
  in
  { Common.id = "hetero";
    title =
      "Ablation: monopoly price sweep on a Zipf/Pareto (heavy-tailed) \
       ensemble";
    x_label = "c";
    panels =
      [ panel (fun (p : Monopoly.price_point) -> p.Monopoly.psi) "Psi";
        panel (fun (p : Monopoly.price_point) -> p.Monopoly.phi) "Phi" ];
    notes =
      [ "the Fig. 4 regimes (linear revenue, collapse, abundant-capacity \
         misalignment) survive heavy-tailed popularity and peak rates";
        "saturation capacity differs from the uniform ensemble; sweeps \
         are anchored to fractions of it" ] }
