(* The scenario-query daemon (DESIGN.md §14).

   Thread/domain layout:

   - one {e listener} systhread accepts on the Unix-domain socket,
     polling a stop flag every 100 ms through [Unix.select];
   - one systhread {e per connection} frames requests with [Lineio],
     parses them ([Request.of_line]), admits them to the bounded queue
     and blocks on the job's reply cell — the protocol is synchronous
     per connection, concurrency comes from having many connections;
   - one {e dispatcher} systhread drains the queue in batches of up to
     [batch_max], answers repeats from the LRU cache, and evaluates the
     misses — parallel-safe queries fan out over the domain pool,
     figure queries run serially (the figure sweep scope is a
     process-wide ref, see [Engine.parallel_safe]).

   The cache and metrics are thread-safe; the job queue and each job's
   reply cell use their own mutex/condition pairs.  Signal handlers
   only flip an [Atomic] (async-signal-safe); the drain sequence runs
   in [stop], on whichever thread called it. *)

module Clock = Po_obs.Clock
module Metrics = Po_obs.Metrics
module Json = Po_obs.Json

type config = {
  socket_path : string;
  domains : int;  (* solver parallelism of the batch pool *)
  queue_capacity : int;  (* admission bound; beyond it requests shed *)
  batch_max : int;  (* max jobs drained per dispatch round *)
  cache_capacity : int;  (* LRU entries; <= 0 disables the cache *)
  default_deadline_s : float option;  (* for requests that set none *)
  max_request_bytes : int;
  access_log : string option;  (* request journal via Po_report.Writer *)
  snapshot_path : string option;  (* shutdown metrics+manifest export *)
  hold_s : float;
      (* test hook: dispatcher pause before each batch, so tests and CI
         can fill the admission queue deterministically *)
}

let default_config =
  { socket_path = "ponet.sock"; domains = 2; queue_capacity = 64;
    batch_max = 16; cache_capacity = 256; default_deadline_s = Some 30.;
    max_request_bytes = 65536; access_log = None; snapshot_path = None;
    hold_s = 0. }

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let m_connections = Metrics.counter "serve.connections"
let m_requests = Metrics.counter "serve.requests"
let m_cache_hits = Metrics.counter "serve.cache_hits"
let m_cache_misses = Metrics.counter "serve.cache_misses"
let m_errors = Metrics.counter "serve.errors"
let m_overloaded = Metrics.counter "serve.overloaded"
let m_queue_depth = Metrics.gauge "serve.queue_depth_peak"
let m_latency = Metrics.histogram "serve.latency_s"

(* ------------------------------------------------------------------ *)
(* Jobs and the admission queue                                       *)
(* ------------------------------------------------------------------ *)

type job = {
  req : Request.t;
  budget : Po_sup.Budget.t option;
  t0 : float;  (* admission instant, for the latency histogram *)
  jm : Mutex.t;
  jc : Condition.t;
  mutable reply : string option;  (* rendered response line *)
}

(* One live connection.  [closed] and list membership are guarded by
   [conns_m]: the connection thread closes its own fd and removes its
   entry when the peer goes away, and [stop] shuts down whatever is
   still registered — the flag keeps the two from ever touching a
   descriptor number the kernel may have reassigned. *)
type conn = {
  c_fd : Unix.file_descr;
  mutable c_th : Thread.t option;  (* set right after spawn *)
  mutable c_closed : bool;
}

type t = {
  cfg : config;
  lsock : Unix.file_descr;
  pool : Po_par.Pool.t;
  cache : Cache.t;
  queue : job Queue.t;
  qm : Mutex.t;
  qc : Condition.t;
  mutable accepting : bool;  (* guarded by [qm] *)
  mutable queue_peak : int;  (* guarded by [qm]; feeds the peak gauge *)
  stop_flag : bool Atomic.t;
  mutable listener : Thread.t option;
  mutable dispatcher : Thread.t option;
  conns_m : Mutex.t;
  mutable conns : conn list;
  log_m : Mutex.t;  (* serialises access-log appenders *)
  started_s : float;
  mutable stopped : bool;
}

let fulfill job line =
  Mutex.protect job.jm (fun () ->
      job.reply <- Some line;
      Condition.signal job.jc)

let await job =
  Mutex.protect job.jm (fun () ->
      let rec wait () =
        match job.reply with
        | Some line -> line
        | None ->
            Condition.wait job.jc job.jm;
            wait ()
      in
      wait ())

let submit t job =
  Mutex.protect t.qm (fun () ->
      if not t.accepting then Error Request.shutting_down
      else
        let depth = Queue.length t.queue in
        if depth >= t.cfg.queue_capacity then begin
          Metrics.incr m_overloaded;
          Error
            (Request.overloaded ~queue_depth:depth
               ~capacity:t.cfg.queue_capacity)
        end
        else begin
          Queue.push job t.queue;
          (* The gauge is a running peak: only a new maximum moves it,
             so a later shallow admission can't overwrite the high-water
             mark. *)
          if depth + 1 > t.queue_peak then begin
            t.queue_peak <- depth + 1;
            Metrics.set m_queue_depth (float_of_int t.queue_peak)
          end;
          Condition.signal t.qc;
          Ok ()
        end)

(* ------------------------------------------------------------------ *)
(* Dispatcher                                                         *)
(* ------------------------------------------------------------------ *)

let finish t (job, key) resp =
  let line = Request.response_line resp in
  (match (resp, key) with
  | Ok _, Some k -> Cache.add t.cache k line
  | Ok _, None -> ()
  | Error _, _ -> Metrics.incr m_errors);
  Metrics.observe m_latency (Clock.now_s () -. job.t0);
  fulfill job line

(* The pool-worker dispatch goes through [Engine.eval_parallel], whose
   static call graph excludes the figure layer's shared sweep scope —
   [process] only ever feeds it queries [Engine.parallel_safe] accepted. *)
let eval_one (query, budget) = Engine.eval_parallel ?budget query

let process t batch =
  (* Cache pass: answer repeats with the stored bytes.  Two identical
     queries in one batch both miss and both solve — their results are
     bit-identical by the determinism contract, so the cache converges
     regardless of which lands last. *)
  let misses =
    List.filter_map
      (fun job ->
        match Request.cache_key job.req with
        | Some key -> (
            match Cache.find t.cache key with
            | Some line ->
                Metrics.incr m_cache_hits;
                Metrics.observe m_latency (Clock.now_s () -. job.t0);
                fulfill job line;
                None
            | None ->
                Metrics.incr m_cache_misses;
                Some (job, Some key))
        | None -> Some (job, None))
      batch
  in
  let par, ser =
    List.partition
      (fun (job, _) -> Engine.parallel_safe job.req.Request.query)
      misses
  in
  let par = Array.of_list par in
  let inputs =
    Array.map (fun (job, _) -> (job.req.Request.query, job.budget)) par
  in
  let results =
    if Array.length inputs > 1 && Po_par.Pool.domains t.pool > 1 then
      match Po_par.Pool.parallel_map t.pool eval_one inputs with
      | results -> results
      | exception Po_guard.Po_error.Error e ->
          (* [Engine.eval] never raises, so this is a pool-level failure
             (e.g. Worker_crash on a dying domain): answer the whole
             batch with the typed error rather than dropping replies. *)
          Array.map (fun _ -> Error (Request.error_of_po e)) inputs
    else Array.map eval_one inputs
  in
  Array.iteri (fun i resp -> finish t par.(i) resp) results;
  List.iter
    (fun (job, key) ->
      finish t (job, key) (Engine.eval ?budget:job.budget job.req.Request.query))
    ser

let rec dispatch_loop t =
  let batch =
    Mutex.protect t.qm (fun () ->
        while Queue.is_empty t.queue && t.accepting do
          Condition.wait t.qc t.qm
        done;
        let n = min t.cfg.batch_max (Queue.length t.queue) in
        List.init n (fun _ -> Queue.pop t.queue))
  in
  match batch with
  | [] -> ()  (* queue empty and no longer accepting: drain complete *)
  | batch ->
      if t.cfg.hold_s > 0. then Clock.sleep_s t.cfg.hold_s;
      process t batch;
      dispatch_loop t

(* ------------------------------------------------------------------ *)
(* Connections                                                        *)
(* ------------------------------------------------------------------ *)

(* Derived from the renderer rather than spelled out, so a whitespace
   change in [Json.to_string] cannot silently break the log's ok flag. *)
let ok_prefix =
  let s = Json.to_string ~indent:0 (Json.Obj [ ("ok", Json.Bool true) ]) in
  String.sub s 0 (String.length s - 1)

let access_log t ~qname ~t0 line =
  match t.cfg.access_log with
  | None -> ()
  | Some path ->
      let ok =
        String.length line >= String.length ok_prefix
        && String.sub line 0 (String.length ok_prefix) = ok_prefix
      in
      let entry =
        Json.to_string ~indent:0
          (Json.Obj
             [ ("t", Json.Number t0);
               ("query", Json.String qname);
               ("ok", Json.Bool ok);
               ("ms", Json.Number ((Clock.now_s () -. t0) *. 1000.)) ])
      in
      (* Writer appends are not atomic across concurrent appenders;
         serialise the connection threads here. *)
      Mutex.protect t.log_m (fun () ->
          Po_report.Writer.append_line ~path entry)

let handle t (req : Request.t) =
  let deadline =
    match req.Request.deadline_s with
    | Some d -> Some d
    | None -> t.cfg.default_deadline_s
  in
  (* The budget starts at admission, so queue wait counts against the
     deadline — an overloaded server answers [deadline_exceeded] rather
     than solving work the client has already given up on. *)
  let budget = Option.map (fun d -> Po_sup.Budget.start ~deadline:d ()) deadline in
  let job =
    { req; budget; t0 = Clock.now_s (); jm = Mutex.create ();
      jc = Condition.create (); reply = None }
  in
  match submit t job with
  | Error e ->
      let line = Request.response_line (Error e) in
      Metrics.observe m_latency (Clock.now_s () -. job.t0);
      line
  | Ok () -> await job

(* Close the connection's fd and drop it from the registry.  Safe to
   race with [stop]: both sides take [conns_m] and test [c_closed], so
   the fd is closed exactly once and never shut down after a close
   could have let the kernel reuse its number. *)
let deregister t c =
  Mutex.protect t.conns_m (fun () ->
      if not c.c_closed then begin
        c.c_closed <- true;
        try Unix.close c.c_fd with Unix.Unix_error (_, _, _) -> ()
      end;
      t.conns <- List.filter (fun c' -> c' != c) t.conns)

let conn_loop t c =
  let fd = c.c_fd in
  let reader = Lineio.reader fd in
  let rec loop () =
    match Lineio.read_line ~max_bytes:t.cfg.max_request_bytes reader with
    | Lineio.Eof -> ()
    | Lineio.Oversized ->
        (* Framing is lost beyond this point; answer and close. *)
        Metrics.incr m_requests;
        Metrics.incr m_errors;
        let e =
          Request.invalid_request
            (Printf.sprintf "request exceeds %d bytes"
               t.cfg.max_request_bytes)
        in
        (try Lineio.write_line fd (Request.response_line (Error e))
         with Unix.Unix_error (_, _, _) -> ())
    | Lineio.Line line ->
        Metrics.incr m_requests;
        let t0 = Clock.now_s () in
        let qname, resp =
          match Request.of_line line with
          | Error e ->
              Metrics.incr m_errors;
              ("invalid", Request.response_line (Error e))
          | Ok req -> (Request.query_name req.Request.query, handle t req)
        in
        access_log t ~qname ~t0 resp;
        (match Lineio.write_line fd resp with
        | () -> loop ()
        | exception Unix.Unix_error (_, _, _) -> ())
  in
  loop ();
  deregister t c

(* ------------------------------------------------------------------ *)
(* Listener                                                           *)
(* ------------------------------------------------------------------ *)

let rec listen_loop t =
  if not (Atomic.get t.stop_flag) then begin
    (match Unix.select [ t.lsock ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept t.lsock with
        | fd, _ ->
            Metrics.incr m_connections;
            (* Register before spawning, so the connection thread's
               [deregister] always finds its own entry. *)
            let c = { c_fd = fd; c_th = None; c_closed = false } in
            Mutex.protect t.conns_m (fun () -> t.conns <- c :: t.conns);
            let th = Thread.create (fun () -> conn_loop t c) () in
            Mutex.protect t.conns_m (fun () -> c.c_th <- Some th)
        | exception Unix.Unix_error (_, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    listen_loop t
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

let start cfg =
  (* A peer that closes its socket before reading the response would
     otherwise deliver SIGPIPE on our next write, whose default
     disposition kills the whole daemon — ignoring it turns those
     writes into EPIPE, which every write site already catches as
     [Unix.Unix_error]. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Metrics.arm ();
  Po_report.Writer.mkdir_p (Filename.dirname cfg.socket_path);
  Po_report.Writer.remove_if_exists cfg.socket_path;
  let lsock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lsock (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen lsock 64;
  let t =
    { cfg; lsock; pool = Po_par.Pool.create ~domains:cfg.domains ();
      cache = Cache.create ~capacity:cfg.cache_capacity;
      queue = Queue.create (); qm = Mutex.create (); qc = Condition.create ();
      accepting = true; queue_peak = 0; stop_flag = Atomic.make false;
      listener = None;
      dispatcher = None; conns_m = Mutex.create (); conns = [];
      log_m = Mutex.create (); started_s = Clock.now_s (); stopped = false }
  in
  t.listener <- Some (Thread.create (fun () -> listen_loop t) ());
  t.dispatcher <- Some (Thread.create (fun () -> dispatch_loop t) ());
  t

let socket_path t = t.cfg.socket_path

let request_stop t = Atomic.set t.stop_flag true

let export_snapshot t =
  match t.cfg.snapshot_path with
  | None -> ()
  | Some path ->
      let params_hash =
        Po_obs.Manifest.params_hash_kv
          [ ("domains", string_of_int t.cfg.domains);
            ("queue_capacity", string_of_int t.cfg.queue_capacity);
            ("batch_max", string_of_int t.cfg.batch_max);
            ("cache_capacity", string_of_int t.cfg.cache_capacity) ]
      in
      let manifest =
        Po_obs.Manifest.make ~figure:"serve" ~params_hash
          ~jobs:t.cfg.domains
          ~wall_s:(Clock.now_s () -. t.started_s)
          ~warnings:(Po_guard.Warnings.count ()) ()
      in
      let body =
        Json.Obj
          [ ("schema", Json.String "po-serve-metrics-v1");
            ("manifest", Po_obs.Manifest.to_json manifest);
            ("metrics", Metrics.snapshot_json ()) ]
      in
      Po_report.Writer.write_atomic ~path (Json.to_string ~indent:2 body)

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stop_flag true;
    (match t.listener with Some th -> Thread.join th | None -> ());
    (* No new connections past this point.  Stop admitting, then let the
       dispatcher drain what was already queued. *)
    Mutex.protect t.qm (fun () ->
        t.accepting <- false;
        Condition.broadcast t.qc);
    (match t.dispatcher with Some th -> Thread.join th | None -> ());
    (* Every admitted job has been answered; unblock connection threads
       still parked in [read_line] and collect them.  Shutdown happens
       under [conns_m] and only on entries not yet closed, so a thread
       that deregistered concurrently can't leave us poking a
       descriptor number the kernel already reassigned. *)
    let conns =
      Mutex.protect t.conns_m (fun () ->
          List.iter
            (fun c ->
              if not c.c_closed then
                try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL
                with Unix.Unix_error (_, _, _) -> ())
            t.conns;
          t.conns)
    in
    List.iter
      (fun c -> match c.c_th with Some th -> Thread.join th | None -> ())
      conns;
    (try Unix.close t.lsock with Unix.Unix_error (_, _, _) -> ());
    export_snapshot t;
    Po_par.Pool.shutdown t.pool;
    Po_report.Writer.remove_if_exists t.cfg.socket_path
  end

let run cfg =
  let t = start cfg in
  let on_signal _ = Atomic.set t.stop_flag true in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  let rec wait_for_stop () =
    if Atomic.get t.stop_flag then ()
    else begin
      Clock.sleep_s 0.1;
      wait_for_stop ()
    end
  in
  wait_for_stop ();
  stop t;
  Sys.set_signal Sys.sigterm prev_term;
  Sys.set_signal Sys.sigint prev_int
