(** The request → solve → result core shared by the daemon and the
    one-shot CLI (DESIGN.md §14).

    {!eval} is a pure function of the query: the optional budget can
    abort a computation (typed [Deadline_exceeded] / [Cancelled]) but
    never changes a completed result, so the daemon's cache can store
    rendered responses and serve them byte-identically, and [ponet
    query] answers with exactly the bytes the daemon would produce. *)

type regimes_outcome = {
  nu : float;  (** per-capita capacity of the compared market *)
  n_cps : int;
  results : Po_core.Public_option.regime_result list;
      (** unregulated, neutral, public option — {!Po_core.Public_option.compare_regimes} order *)
}

type welfare_outcome = {
  w_nu : float;
  w_n_cps : int;
  rows : (string * Po_core.Welfare.t) list;
}

val scenario_market :
  Request.scenario -> Po_model.Cp.t array * float
(** Materialise a request scenario: the paper ensemble at the request's
    seed, and [nu = nu_frac * saturation_nu] — the same construction as
    [Po_experiments.Common.ensemble] plus the CLI's [--capacity]
    convention. *)

val regimes :
  ?budget:Po_sup.Budget.t -> sc:Request.scenario -> po_share:float ->
  levels:int -> points:int -> unit -> regimes_outcome
(** The paper's headline regime comparison, with cooperative budget
    checks between the three regime solves.  The CLI's [ponet regimes]
    table and the daemon's JSON answer are both rendered from this. *)

val welfare :
  ?budget:Po_sup.Budget.t -> ?pool:Po_par.Pool.t -> sc:Request.scenario ->
  po_share:float -> levels:int -> points:int -> unit -> welfare_outcome
(** [pool] parallelises the underlying welfare sweeps (values are
    pool-invariant).  The daemon always omits it: a solve running inside
    a pool worker must not re-enter the pool. *)

val parallel_safe : Request.query -> bool
(** Whether the query may be evaluated inside a parallel batch on the
    domain pool.  Figure generation mutates the process-wide sweep
    scope, so [Fig_point] (and the trivially cheap [Stats]) must run
    serially in the dispatcher. *)

val eval :
  ?budget:Po_sup.Budget.t -> Request.query -> (Po_obs.Json.t, Request.error)
  result
(** Evaluate one query.  Typed solver/supervision failures come back as
    structured {!Request.error}s carrying a [("query", name)] context
    frame — never an exception, never a dropped response. *)

val eval_parallel :
  ?budget:Po_sup.Budget.t -> Request.query -> (Po_obs.Json.t, Request.error)
  result
(** {!eval} restricted to the {!parallel_safe} queries — the dispatch a
    pool worker runs.  Its static call graph cannot reach the figure
    layer's process-wide sweep scope (polint R7 checks this), which is
    what makes batching on the domain pool sound.  A non-parallel-safe
    query answers a typed [invalid_scenario] error. *)
