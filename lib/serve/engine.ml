(* The request -> solve -> result core shared by the daemon and the
   one-shot CLI (DESIGN.md §14).

   Everything here is a pure function of the query (plus the optional
   budget, which can only abort a computation, never change its value):
   the daemon batches calls to [eval] onto the domain pool, the CLI
   calls it once, and both produce bit-identical JSON for the same
   query.  The scenario construction deliberately mirrors
   [Po_experiments.Common.ensemble]: the paper ensemble drawn at the
   request's seed, with capacity expressed as a fraction of the
   population's saturation capacity. *)

module Json = Po_obs.Json

let m_evals = Po_obs.Metrics.counter "serve.evals"

type regimes_outcome = {
  nu : float;
  n_cps : int;
  results : Po_core.Public_option.regime_result list;
}

type welfare_outcome = {
  w_nu : float;
  w_n_cps : int;
  rows : (string * Po_core.Welfare.t) list;
}

let scenario_market (sc : Request.scenario) =
  let cps =
    Po_workload.Ensemble.paper_ensemble ~n:sc.Request.n_cps
      ~seed:sc.Request.seed ()
  in
  let nu = sc.Request.nu_frac *. Po_workload.Ensemble.saturation_nu cps in
  (cps, nu)

(* The three regimes in [Public_option.compare_regimes] order, with a
   cooperative budget check between each (the regime searches have no
   budget plumbing of their own). *)
let regimes ?budget ~(sc : Request.scenario) ~po_share ~levels ~points () =
  let cps, nu = scenario_market sc in
  Po_sup.Budget.check_opt budget;
  let unreg = Po_core.Public_option.unregulated ~levels ~points ~nu cps in
  Po_sup.Budget.check_opt budget;
  let neut = Po_core.Public_option.neutral ~nu cps in
  Po_sup.Budget.check_opt budget;
  let po =
    Po_core.Public_option.public_option ~po_share ~levels ~points ~nu cps
  in
  { nu; n_cps = Array.length cps; results = [ unreg; neut; po ] }

(* [pool] exists for the one-shot CLI path; the daemon always omits it —
   a welfare solve running inside a pool worker must not re-enter the
   pool (Po_par.Pool is not re-entrant). *)
let welfare ?budget ?pool ~(sc : Request.scenario) ~po_share ~levels ~points
    () =
  let cps, nu = scenario_market sc in
  Po_sup.Budget.check_opt budget;
  let rows =
    Po_core.Welfare.regime_table ?pool ~po_share ~levels ~points ~nu cps
  in
  { w_nu = nu; w_n_cps = Array.length cps; rows }

(* ------------------------------------------------------------------ *)
(* JSON renderings                                                    *)
(* ------------------------------------------------------------------ *)

let strategy_json (s : Po_core.Strategy.t) =
  Json.Obj
    [ ("kappa", Json.Number (Po_core.Strategy.kappa s));
      ("c", Json.Number (Po_core.Strategy.c s)) ]

let regime_result_json (r : Po_core.Public_option.regime_result) =
  Json.Obj
    [ ("label", Json.String r.Po_core.Public_option.label);
      ("phi", Json.Number r.Po_core.Public_option.phi);
      ("psi", Json.Number r.Po_core.Public_option.psi);
      ("strategy",
       match r.Po_core.Public_option.commercial_strategy with
       | None -> Json.Null
       | Some s -> strategy_json s);
      ("market_share",
       match r.Po_core.Public_option.market_share with
       | None -> Json.Null
       | Some m -> Json.Number m) ]

let regimes_json r =
  Json.Obj
    [ ("n_cps", Json.Number (float_of_int r.n_cps));
      ("nu", Json.Number r.nu);
      ("regimes", Json.List (List.map regime_result_json r.results)) ]

let welfare_json w =
  Json.Obj
    [ ("n_cps", Json.Number (float_of_int w.w_n_cps));
      ("nu", Json.Number w.w_nu);
      ("rows",
       Json.List
         (List.map
            (fun (label, (t : Po_core.Welfare.t)) ->
              Json.Obj
                [ ("regime", Json.String label);
                  ("consumer", Json.Number t.Po_core.Welfare.consumer);
                  ("isp", Json.Number t.Po_core.Welfare.isp);
                  ("cp", Json.Number t.Po_core.Welfare.cp);
                  ("total", Json.Number t.Po_core.Welfare.total) ])
            w.rows)) ]

let solution_json ~n_cps ~nu (sol : Po_model.Equilibrium.solution) =
  Json.Obj
    [ ("n_cps", Json.Number (float_of_int n_cps));
      ("nu", Json.Number nu);
      ("cap", Json.Number sol.Po_model.Equilibrium.cap);
      ("congested", Json.Bool sol.Po_model.Equilibrium.congested);
      ("per_capita_rate", Json.Number sol.Po_model.Equilibrium.per_capita_rate);
      ("utilization",
       Json.Number (Po_model.Surplus.utilization ~nu sol)) ]

let series_json s =
  Json.Obj
    [ ("label", Json.String (Po_report.Series.label s));
      ("xs",
       Json.List
         (Array.to_list
            (Array.map (fun v -> Json.Number v) (Po_report.Series.xs s))));
      ("ys",
       Json.List
         (Array.to_list
            (Array.map (fun v -> Json.Number v) (Po_report.Series.ys s)))) ]

let figure_json (fg : Po_experiments.Common.figure) =
  Json.Obj
    [ ("id", Json.String fg.Po_experiments.Common.id);
      ("title", Json.String fg.Po_experiments.Common.title);
      ("x_label", Json.String fg.Po_experiments.Common.x_label);
      ("panels",
       Json.List
         (List.map
            (fun (name, series) ->
              Json.Obj
                [ ("name", Json.String name);
                  ("series", Json.List (List.map series_json series)) ])
            fg.Po_experiments.Common.panels));
      ("notes",
       Json.List
         (List.map (fun n -> Json.String n) fg.Po_experiments.Common.notes))
    ]

(* ------------------------------------------------------------------ *)
(* Dispatch                                                           *)
(* ------------------------------------------------------------------ *)

(* Figure generation runs through [Common.with_figure_scope], whose
   sweep-scope state is a process-wide ref — safe from exactly one
   domain at a time.  The daemon therefore evaluates [Fig_point] (and
   the trivially cheap [Stats]) serially in the dispatcher, never
   inside a parallel batch. *)
let parallel_safe = function
  | Request.Fig_point _ | Request.Stats -> false
  | Request.Ping | Request.Equilibrium _ | Request.Surplus _
  | Request.Regimes _ | Request.Welfare _ ->
      true

let raise_po (e : Po_guard.Po_error.t) = raise (Po_guard.Po_error.Error e)

(* The parallel-safe dispatch: everything here touches only solve-local
   state, so pool workers may run it concurrently.  [Stats] and
   [Fig_point] are deliberately NOT handled — the daemon routes them to
   the serial path, and keeping them out of this function makes that
   invariant structural: the closure a pool worker runs cannot reach
   the figure layer's process-wide sweep scope even in its static call
   graph (polint R7 verifies exactly that). *)
let eval_safe_exn ?budget query =
  Po_obs.Metrics.incr m_evals;
  match query with
  | Request.Ping -> Json.Obj [ ("pong", Json.Bool true) ]
  | Request.Equilibrium sc -> (
      Po_sup.Budget.check_opt budget;
      let cps, nu = scenario_market sc in
      match Po_model.Equilibrium.solve_checked ?budget ~nu cps with
      | Ok sol -> solution_json ~n_cps:(Array.length cps) ~nu sol
      | Error e -> raise_po e)
  | Request.Surplus sc -> (
      Po_sup.Budget.check_opt budget;
      let cps, nu = scenario_market sc in
      match Po_model.Equilibrium.solve_checked ?budget ~nu cps with
      | Error e -> raise_po e
      | Ok sol ->
          Json.Obj
            [ ("n_cps", Json.Number (float_of_int (Array.length cps)));
              ("nu", Json.Number nu);
              ("phi", Json.Number (Po_model.Surplus.consumer cps sol));
              ("per_capita_rate",
               Json.Number sol.Po_model.Equilibrium.per_capita_rate);
              ("utilization",
               Json.Number (Po_model.Surplus.utilization ~nu sol)) ])
  | Request.Regimes { sc; po_share; levels; points } ->
      regimes_json (regimes ?budget ~sc ~po_share ~levels ~points ())
  | Request.Welfare { sc; po_share; levels; points } ->
      welfare_json (welfare ?budget ~sc ~po_share ~levels ~points ())
  | Request.Stats | Request.Fig_point _ ->
      (* Unreachable from the daemon (the dispatcher routes these
         serially through [eval]); typed, not an assert, so a misuse
         still answers the wire. *)
      Po_guard.Po_error.fail
        (Po_guard.Po_error.Invalid_scenario
           (Request.query_name query ^ " is not parallel-safe"))

(* The full dispatch, for the serial paths (dispatcher-inline and the
   one-shot CLI). *)
let eval_exn ?budget query =
  match query with
  | Request.Stats ->
      Po_obs.Metrics.incr m_evals;
      Json.Obj
        [ ("counters",
           Json.Obj
             (List.map
                (fun (name, v) -> (name, Json.Number (float_of_int v)))
                (Po_obs.Metrics.counters ()))) ]
  | Request.Fig_point { fig; n_cps; seed; sweep_points } -> (
      Po_obs.Metrics.incr m_evals;
      Po_sup.Budget.check_opt budget;
      match Po_experiments.Registry.find fig with
      | None ->
          Po_guard.Po_error.fail
            (Po_guard.Po_error.Invalid_scenario
               (Printf.sprintf "unknown figure id %S" fig))
      | Some entry ->
          let params =
            { Po_experiments.Common.n_cps; seed; sweep_points; jobs = 1;
              checkpoint = None;
              sup = Po_sup.Supervise.v ?budget () }
          in
          figure_json (entry.Po_experiments.Registry.generate ~params ()))
  | ( Request.Ping | Request.Equilibrium _ | Request.Surplus _
    | Request.Regimes _ | Request.Welfare _ ) as q ->
      eval_safe_exn ?budget q

let wrap dispatch ?budget query =
  match
    Po_guard.Po_error.capture (fun () ->
        Po_guard.Po_error.with_context
          [ ("query", Request.query_name query) ]
          (fun () -> dispatch ?budget query))
  with
  | Ok json -> Ok json
  | Error e -> Error (Request.error_of_po e)
  | exception exn ->
      (* [capture] only catches typed errors; anything else must still
         become a structured response — an exception escaping here would
         kill a pool worker (Worker_crash in the dispatcher) and with it
         the daemon's dispatch loop. *)
      Error
        (Request.error
           ~context:[ ("query", Request.query_name query) ]
           "internal_error" (Printexc.to_string exn))

let eval ?budget query = wrap eval_exn ?budget query

let eval_parallel ?budget query = wrap eval_safe_exn ?budget query
