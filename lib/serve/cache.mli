(** The daemon's solve cache: a mutex-protected LRU map from cache keys
    ({!Po_obs.Manifest.params_canonical} strings — full parameter
    renderings, never digests) to rendered response lines
    (DESIGN.md §14).

    Values are the exact bytes written to the socket, so a hit is
    byte-identical to the cold solve that populated the entry.  All
    operations are O(1) plus the hashtable probe and safe from any
    thread. *)

type t

val create : capacity:int -> t
(** A cache holding at most [capacity] entries, evicting the least
    recently used beyond that.  [capacity <= 0] disables caching:
    {!find} always misses and {!add} is a no-op. *)

val capacity : t -> int
val size : t -> int

val find : t -> string -> string option
(** Lookup; a hit refreshes the entry's recency. *)

val add : t -> string -> string -> unit
(** [add t key value] inserts (or refreshes) an entry, evicting the LRU
    entry when the cache is over capacity. *)
