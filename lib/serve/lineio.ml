(* Newline-delimited framing over a file descriptor — the transport
   layer of the serve wire protocol (DESIGN.md §14).

   A reader owns a small carry buffer so a single [Unix.read] can yield
   several lines (pipelined clients) or a fraction of one (large
   requests).  Oversized lines are reported as a typed event rather
   than buffered without bound: the admission layer answers them with
   an [invalid_request] error and closes the connection, so a
   misbehaving client cannot grow server memory past [max_bytes]. *)

type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes read but not yet consumed *)
  chunk : bytes;
}

type event = Line of string | Oversized | Eof

let reader fd = { fd; buf = Buffer.create 512; chunk = Bytes.create 8192 }

(* Extract the first complete line from the carry buffer, if any. *)
let take_line r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear r.buf;
      Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
      (* Tolerate CRLF framing from casual clients (socat, telnet). *)
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r'
        then String.sub line 0 (String.length line - 1)
        else line
      in
      Some line

let read_line ?(max_bytes = 1_048_576) r =
  let rec loop () =
    match take_line r with
    | Some line ->
        if String.length line > max_bytes then Oversized else Line line
    | None ->
        if Buffer.length r.buf > max_bytes then Oversized
        else begin
          match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
          | 0 -> Eof
          | n ->
              Buffer.add_subbytes r.buf r.chunk 0 n;
              loop ()
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
            ->
              Eof
        end
  in
  loop ()

let write_line fd line =
  let payload = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length payload in
  let rec send off =
    if off < len then
      let n = Unix.write fd payload off (len - off) in
      send (off + n)
  in
  send 0
