(** Deterministic, seeded load generator for the serve daemon — the
    client half of the serving bench tier (DESIGN.md §14).

    The request stream is a pure function of [seed]: one splitmix
    stream per client, a fixed pool of [scenarios] distinct markets,
    and a fixed query mix.  Repeats within the pool exercise the
    daemon's solve cache.  Latencies and throughput are wall-clock
    measurements (through [Po_obs.Clock]) — products of the run, never
    inputs to it. *)

type config = {
  socket_path : string;
  requests : int;  (** total requests, spread across clients *)
  clients : int;  (** concurrent connections *)
  seed : int;
  scenarios : int;  (** distinct scenario pool size *)
  deadline_s : float option;  (** attached to every solve request *)
  out_path : string option;
      (** when set, the [po-serve-v1] report is written there through
          [Po_report.Writer] *)
}

val default_config : config
(** 200 requests over 4 clients, seed 42, 8 scenarios, 30 s deadlines,
    no report file. *)

type summary = {
  sent : int;
  ok : int;
  errors : int;
      (** structured error responses — protocol-valid, distinct from
          [protocol_errors] *)
  protocol_errors : int;  (** unparsable replies or early EOF *)
  first_protocol_error : string option;
      (** diagnostic message of the first protocol failure, if any *)
  p50_ms : float;  (** nearest-rank percentiles over answered requests *)
  p99_ms : float;
  max_ms : float;
  wall_s : float;
  throughput_rps : float;
  server_counters : (string * int) list;
      (** the daemon's counters fetched with a final [stats] query
          (empty if that query failed) *)
}

val summary_json : config -> summary -> Po_obs.Json.t
(** The [po-serve-v1] report body. *)

val run : config -> summary
(** Run the configured load against a listening daemon.  Raises
    [Invalid_argument] for non-positive [requests]/[clients] and
    [Unix.Unix_error] if the initial connections fail. *)
