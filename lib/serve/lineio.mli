(** Newline-delimited framing over Unix file descriptors — the
    transport layer of the serve wire protocol, shared by the daemon,
    the load generator and the tests (DESIGN.md §14). *)

type reader
(** A buffered line reader owning a carry buffer, so pipelined requests
    and partial reads are both handled.  One reader per descriptor; not
    thread-safe (each connection has exactly one reading thread). *)

type event =
  | Line of string  (** one complete line, newline (and any [\r]) stripped *)
  | Oversized
      (** the current line exceeded [max_bytes] — the reader stopped
          buffering; the connection should be answered with a typed
          error and closed *)
  | Eof  (** orderly close, or a reset treated as one *)

val reader : Unix.file_descr -> reader

val read_line : ?max_bytes:int -> reader -> event
(** Block until a full line, end of stream, or the size bound
    (default 1 MiB) is hit. *)

val write_line : Unix.file_descr -> string -> unit
(** Write [line ^ "\n"], retrying short writes.  Raises
    [Unix.Unix_error] (e.g. [EPIPE]) if the peer is gone; callers treat
    that as the end of the connection. *)
