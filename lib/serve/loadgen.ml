(* Deterministic load generator for the serve daemon (DESIGN.md §14).

   The request stream is a pure function of the seed: one splitmix
   stream per client (split off the root in client-index order), a
   fixed scenario pool of [scenarios] distinct markets, and a fixed
   query mix drawn per request.  Two runs with the same seed send the
   same requests in the same per-client order — only the interleaving
   across clients, and therefore the measured latencies, vary.  The
   scenario pool is deliberately small so repeats drive the daemon's
   solve cache. *)

module Clock = Po_obs.Clock
module Json = Po_obs.Json

type config = {
  socket_path : string;
  requests : int;  (* total, spread across clients *)
  clients : int;
  seed : int;
  scenarios : int;  (* distinct scenario pool; repeats hit the cache *)
  deadline_s : float option;  (* attached to every solve request *)
  out_path : string option;  (* po-serve-v1 report via Writer *)
}

let default_config =
  { socket_path = "ponet.sock"; requests = 200; clients = 4; seed = 42;
    scenarios = 8; deadline_s = Some 30.; out_path = None }

type summary = {
  sent : int;
  ok : int;
  errors : int;  (* structured error responses (still protocol-valid) *)
  protocol_errors : int;  (* unparsable replies, early EOF *)
  first_protocol_error : string option;  (* diagnostic for the above *)
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  wall_s : float;
  throughput_rps : float;
  server_counters : (string * int) list;  (* from a final stats query *)
}

(* ------------------------------------------------------------------ *)
(* Request stream                                                     *)
(* ------------------------------------------------------------------ *)

let scenario_of_index i =
  { Request.n_cps = 20 + (5 * i); seed = 1000 + i; nu_frac = 0.85 }

(* Draw one request: 1/8 pings, the rest solves over the scenario pool
   with a mix of equilibrium / surplus / regime queries. *)
let draw_request cfg rng =
  let query =
    let k = Po_prng.Splitmix.int rng 8 in
    if k = 0 then Request.Ping
    else
      let sc = scenario_of_index (Po_prng.Splitmix.int rng cfg.scenarios) in
      match k with
      | 1 | 2 | 3 -> Request.Equilibrium sc
      | 4 | 5 -> Request.Surplus sc
      | _ ->
          Request.Regimes
            { sc; po_share = Request.default_po_share;
              levels = Request.default_levels;
              points = Request.default_points }
  in
  { Request.query; deadline_s = cfg.deadline_s }

(* ------------------------------------------------------------------ *)
(* Client threads                                                     *)
(* ------------------------------------------------------------------ *)

type client_tally = {
  mutable c_sent : int;
  mutable c_ok : int;
  mutable c_errors : int;
  mutable c_protocol : int;
  mutable c_diag : string option;  (* first protocol-error message *)
  latencies_ms : float array;  (* one slot per request of this client *)
}

let protocol_failure tally msg =
  tally.c_protocol <- tally.c_protocol + 1;
  if tally.c_diag = None then tally.c_diag <- Some msg

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let client_run cfg rng count tally =
  let fd = connect cfg.socket_path in
  let reader = Lineio.reader fd in
  let rec loop i =
    if i < count then begin
      let req = draw_request cfg rng in
      let t0 = Clock.now_s () in
      Lineio.write_line fd (Json.to_string ~indent:0 (Request.to_json req));
      tally.c_sent <- tally.c_sent + 1;
      match Lineio.read_line reader with
      | Lineio.Eof | Lineio.Oversized ->
          protocol_failure tally "connection ended before a response"
      | Lineio.Line line ->
          tally.latencies_ms.(i) <- (Clock.now_s () -. t0) *. 1000.;
          (match Request.response_of_line line with
          | Ok (Ok _) -> tally.c_ok <- tally.c_ok + 1
          | Ok (Error _) -> tally.c_errors <- tally.c_errors + 1
          | Error msg -> protocol_failure tally ("unparsable reply: " ^ msg));
          loop (i + 1)
    end
  in
  let finish () = try Unix.close fd with Unix.Unix_error (_, _, _) -> () in
  (match loop 0 with
  | () -> finish ()
  | exception Unix.Unix_error (e, _, _) ->
      (* a dropped connection mid-run is a protocol failure, not a crash *)
      protocol_failure tally ("connection error: " ^ Unix.error_message e);
      finish ())

(* ------------------------------------------------------------------ *)
(* Aggregation                                                        *)
(* ------------------------------------------------------------------ *)

(* Nearest-rank percentile over the measured (non-zero-slot) latencies. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let fetch_server_counters cfg =
  match connect cfg.socket_path with
  | exception Unix.Unix_error (_, _, _) -> []
  | fd -> (
      let reader = Lineio.reader fd in
      let req = { Request.query = Request.Stats; deadline_s = None } in
      let finish v =
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        v
      in
      match
        Lineio.write_line fd (Json.to_string ~indent:0 (Request.to_json req));
        Lineio.read_line reader
      with
      | exception Unix.Unix_error (_, _, _) -> finish []
      | Lineio.Eof | Lineio.Oversized -> finish []
      | Lineio.Line line ->
          finish
            (match Request.response_of_line line with
            | Ok (Ok result) -> (
                match Json.member "counters" result with
                | Some (Json.Obj kvs) ->
                    List.filter_map
                      (fun (k, v) ->
                        match Json.to_float v with
                        | Some f -> Some (k, int_of_float f)
                        | None -> None)
                      kvs
                | Some _ | None -> [])
            | Ok (Error _) | Error _ -> []))

let summary_json cfg s =
  Json.Obj
    [ ("schema", Json.String "po-serve-v1");
      ("config",
       Json.Obj
         [ ("requests", Json.Number (float_of_int cfg.requests));
           ("clients", Json.Number (float_of_int cfg.clients));
           ("seed", Json.Number (float_of_int cfg.seed));
           ("scenarios", Json.Number (float_of_int cfg.scenarios)) ]);
      ("sent", Json.Number (float_of_int s.sent));
      ("ok", Json.Number (float_of_int s.ok));
      ("errors", Json.Number (float_of_int s.errors));
      ("protocol_errors", Json.Number (float_of_int s.protocol_errors));
      ("first_protocol_error",
       match s.first_protocol_error with
       | None -> Json.Null
       | Some msg -> Json.String msg);
      ("latency_ms",
       Json.Obj
         [ ("p50", Json.Number s.p50_ms);
           ("p99", Json.Number s.p99_ms);
           ("max", Json.Number s.max_ms) ]);
      ("wall_s", Json.Number s.wall_s);
      ("throughput_rps", Json.Number s.throughput_rps);
      ("server",
       Json.Obj
         [ ("counters",
            Json.Obj
              (List.map
                 (fun (k, v) -> (k, Json.Number (float_of_int v)))
                 s.server_counters)) ]) ]

let run cfg =
  if cfg.requests <= 0 then invalid_arg "Loadgen.run: requests must be > 0";
  if cfg.clients <= 0 then invalid_arg "Loadgen.run: clients must be > 0";
  (* A daemon shutting down mid-run closes our socket; the next write
     must surface as EPIPE (counted as a protocol failure by
     [client_run]), not as a process-killing SIGPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let root = Po_prng.Splitmix.of_int cfg.seed in
  let per_client =
    Array.init cfg.clients (fun i ->
        let base = cfg.requests / cfg.clients in
        (base + (if i < cfg.requests mod cfg.clients then 1 else 0),
         Po_prng.Splitmix.split root))
  in
  let tallies =
    Array.map
      (fun (count, _) ->
        { c_sent = 0; c_ok = 0; c_errors = 0; c_protocol = 0; c_diag = None;
          latencies_ms = Array.make (max 1 count) 0. })
      per_client
  in
  let t_start = Clock.now_s () in
  let threads =
    Array.mapi
      (fun i (count, rng) ->
        Thread.create (fun () -> client_run cfg rng count tallies.(i)) ())
      per_client
  in
  Array.iter Thread.join threads;
  let wall_s = Clock.now_s () -. t_start in
  let sent = Array.fold_left (fun a t -> a + t.c_sent) 0 tallies in
  let ok = Array.fold_left (fun a t -> a + t.c_ok) 0 tallies in
  let errors = Array.fold_left (fun a t -> a + t.c_errors) 0 tallies in
  let protocol_errors =
    Array.fold_left (fun a t -> a + t.c_protocol) 0 tallies
  in
  let latencies =
    Array.concat
      (Array.to_list
         (Array.mapi
            (fun i t -> Array.sub t.latencies_ms 0 (fst per_client.(i)))
            tallies))
  in
  let answered =
    Array.of_list (List.filter (fun l -> l > 0.) (Array.to_list latencies))
  in
  Array.sort Float.compare answered;
  let first_protocol_error =
    Array.fold_left
      (fun acc t -> if acc = None then t.c_diag else acc)
      None tallies
  in
  let s =
    { sent; ok; errors; protocol_errors; first_protocol_error;
      p50_ms = percentile answered 50.;
      p99_ms = percentile answered 99.;
      max_ms = (if Array.length answered = 0 then 0.
                else answered.(Array.length answered - 1));
      wall_s;
      throughput_rps =
        (if wall_s > 0. then float_of_int sent /. wall_s else 0.);
      server_counters = fetch_server_counters cfg }
  in
  (match cfg.out_path with
  | None -> ()
  | Some path ->
      Po_report.Writer.write_atomic ~path
        (Json.to_string ~indent:2 (summary_json cfg s)));
  s
