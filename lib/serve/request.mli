(** Wire protocol of the scenario-query daemon (DESIGN.md §14).

    One JSON document per line in each direction, encoded with the
    dependency-free {!Po_obs.Json} codec.  This module is pure — no
    sockets, no clocks — so the daemon, the one-shot [ponet query] path
    and the tests all share exactly the same request/response values and
    bytes.

    Parsing is {e strict}: unknown query names, wrongly typed or
    out-of-range fields and unrecognised parameter keys are rejected
    with an [invalid_request] error rather than ignored.  Strictness is
    part of the cache-key contract — a field the server silently dropped
    could alias two distinct scenarios under one cache entry. *)

type scenario = { n_cps : int; seed : int; nu_frac : float }
(** A market: [n_cps] CPs drawn from the paper ensemble at [seed], with
    per-capita capacity [nu_frac] times the population's saturation
    capacity. *)

type query =
  | Ping  (** liveness probe; answers [{"pong": true}] *)
  | Stats  (** server metrics counters (uncacheable) *)
  | Equilibrium of scenario  (** rate equilibrium of the market *)
  | Surplus of scenario  (** consumer surplus at the equilibrium *)
  | Regimes of { sc : scenario; po_share : float; levels : int; points : int }
      (** the paper's headline regime comparison: unregulated monopoly
          vs network-neutral regulation vs public option *)
  | Welfare of { sc : scenario; po_share : float; levels : int; points : int }
      (** three-party welfare decomposition per regime *)
  | Fig_point of { fig : string; n_cps : int; seed : int; sweep_points : int }
      (** evaluate a registered figure at the given scale and return its
          panels as JSON series *)

type t = { query : query; deadline_s : float option }
(** A request envelope: the query plus an optional per-request deadline
    in seconds, enforced by the server through a [Po_sup.Budget]. *)

type error = {
  code : string;
      (** ["invalid_request"], ["overloaded"], ["internal_error"], or a
          [Po_guard.Po_error] kind slug (["deadline_exceeded"],
          ["non_convergence"], ...) *)
  message : string;
  context : (string * string) list;
      (** the typed error's context frames, outermost first *)
}

type response = (Po_obs.Json.t, error) result

val default_scenario : scenario
(** The one-shot CLI defaults (paper scale, [nu_frac = 0.85]), used for
    omitted request fields so an empty params object answers exactly
    like [ponet regimes]. *)

val default_po_share : float
val default_levels : int
val default_points : int

val query_name : query -> string

val to_json : t -> Po_obs.Json.t
val of_json : Po_obs.Json.t -> (t, error) result
val of_line : string -> (t, error) result
(** Parse one wire line (JSON text). *)

val response_to_json : response -> Po_obs.Json.t
val response_of_json : Po_obs.Json.t -> (response, string) result
val response_of_line : string -> (response, string) result
val response_line : response -> string
(** The exact bytes written to the socket (compact JSON, no newline). *)

val error : ?context:(string * string) list -> string -> string -> error
(** [error code message]. *)

val invalid_request : ?context:(string * string) list -> string -> error
val overloaded : queue_depth:int -> capacity:int -> error
val shutting_down : error

val error_of_po : Po_guard.Po_error.t -> error
(** Map a typed solver/supervision error to a structured wire error:
    the kind becomes the [code] slug, the context frames travel
    verbatim. *)

val f17 : float -> string
(** Canonical float rendering shared with the JSON printer (shortest
    round-tripping form); used for cache-key fields. *)

val cache_key : t -> string option
(** The solve-cache key: {!Po_obs.Manifest.params_canonical} over the
    query name and every scenario field — the full canonical string,
    not its digest, so distinct scenarios can never alias one cache
    entry.  [None] for uncacheable queries (ping, stats).  Deadlines
    are excluded — they bound the computation, never its value. *)
