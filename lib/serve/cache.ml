(* A mutex-protected LRU map from cache keys (canonical parameter
   strings, see Po_obs.Manifest.params_canonical) to rendered response
   lines.  The hashtable hashes the key string for bucketing and
   compares the full string on probe, so two distinct parameter sets
   can never alias one entry.

   Values are the exact bytes the daemon writes to the socket, so a hit
   is byte-identical to the cold solve that populated it — the
   bit-identity half of the serve determinism contract (DESIGN.md §14).
   Recency is tracked with an intrusive doubly-linked list: find and
   add are O(1) plus the hashtable probe. *)

type node = {
  key : string;
  value : string;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;  (* <= 0 disables the cache entirely *)
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable size : int;
  m : Mutex.t;
}

let create ~capacity =
  { capacity; tbl = Hashtbl.create (max 16 capacity); head = None;
    tail = None; size = 0; m = Mutex.create () }

let capacity t = t.capacity

let size t = Mutex.protect t.m (fun () -> t.size)

(* Unlink [n] from the recency list (caller holds the mutex). *)
let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some nx -> nx.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  if t.capacity <= 0 then None
  else
    Mutex.protect t.m (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | None -> None
        | Some n ->
            unlink t n;
            push_front t n;
            Some n.value)

let add t key value =
  if t.capacity > 0 then
    Mutex.protect t.m (fun () ->
        (match Hashtbl.find_opt t.tbl key with
        | Some old ->
            (* Replace: same key re-solved (e.g. after an eviction race
               in a batch) — the value is bit-identical by construction,
               but keep the latest anyway. *)
            unlink t old;
            Hashtbl.remove t.tbl key;
            t.size <- t.size - 1
        | None -> ());
        let n = { key; value; prev = None; next = None } in
        Hashtbl.replace t.tbl key n;
        push_front t n;
        t.size <- t.size + 1;
        if t.size > t.capacity then
          match t.tail with
          | Some lru ->
              unlink t lru;
              Hashtbl.remove t.tbl lru.key;
              t.size <- t.size - 1
          | None -> ())
