(** The long-lived scenario-query daemon (DESIGN.md §14).

    Listens on a Unix-domain socket for newline-delimited JSON requests
    ({!Request}), admits them to a bounded queue, batches them onto a
    domain pool through the shared {!Engine}, and answers repeats from
    an LRU cache whose hits are byte-identical to the cold solve.
    Every failure mode — malformed request, oversized payload, expired
    deadline, queue overflow, solver non-convergence — is a structured
    JSON error response, never a dropped connection. *)

type config = {
  socket_path : string;
  domains : int;  (** solver parallelism of the batch pool *)
  queue_capacity : int;
      (** admission bound: requests beyond it are shed with a typed
          [overloaded] response *)
  batch_max : int;  (** maximum jobs drained per dispatch round *)
  cache_capacity : int;  (** LRU entries; [<= 0] disables the cache *)
  default_deadline_s : float option;
      (** budget for requests that carry no [deadline_s] of their own;
          [None] leaves them unbounded *)
  max_request_bytes : int;
      (** request lines beyond this answer [invalid_request] and close
          (framing is lost past the bound) *)
  access_log : string option;
      (** when set, one compact JSON line per request is appended there
          through [Po_report.Writer] *)
  snapshot_path : string option;
      (** when set, a [po-serve-metrics-v1] document (metrics snapshot
          plus run manifest) is exported there on shutdown *)
  hold_s : float;
      (** test hook: dispatcher pause before each batch, letting tests
          and CI fill the admission queue deterministically; [0.] in
          production *)
}

val default_config : config
(** [ponet serve]'s defaults: socket ["ponet.sock"], 2 domains, queue
    of 64, batches of 16, 256 cache entries, 30 s default deadline,
    64 KiB request bound, no access log, no snapshot, no hold. *)

type t

val start : config -> t
(** Bind the socket (replacing a stale file at that path), spawn the
    listener and dispatcher threads, arm metrics, and return
    immediately.  Installs [Signal_ignore] for SIGPIPE process-wide so
    a peer that disconnects before reading its response surfaces as
    EPIPE on the write, not as a fatal signal.  Raises
    [Unix.Unix_error] if the socket cannot be bound. *)

val socket_path : t -> string

val request_stop : t -> unit
(** Flip the stop flag (async-signal-safe — this is all the daemon's
    signal handlers do).  The listener notices within 100 ms; call
    {!stop} (or let {!run} do it) to complete the drain. *)

val stop : t -> unit
(** Graceful shutdown, idempotent: stop accepting connections and
    requests, drain every admitted job through the dispatcher (each one
    gets its response), unblock idle connections, export the metrics
    snapshot if configured, shut the pool down and remove the socket
    file. *)

val run : config -> unit
(** [start], then block until SIGTERM / SIGINT (or {!request_stop} from
    another thread) and {!stop}.  The foreground mode behind
    [ponet serve]. *)
