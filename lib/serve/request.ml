(* Wire protocol of the scenario-query daemon (DESIGN.md §14).

   Requests and responses travel as one JSON document per line over a
   Unix-domain socket, encoded with the dependency-free [Po_obs.Json]
   codec.  This module holds the typed request/response vocabulary and
   its codecs; it is deliberately free of any I/O so the daemon, the
   one-shot CLI ([ponet query]) and the tests all round-trip the exact
   same values.

   Parsing is strict: unknown query names, wrongly typed fields,
   out-of-range values and unrecognised parameter keys are all rejected
   with a typed [invalid_request] error.  Strictness protects the
   cache-key contract — a field the server silently ignored could alias
   two scenarios under one cache entry. *)

module Json = Po_obs.Json

type scenario = { n_cps : int; seed : int; nu_frac : float }

type query =
  | Ping
  | Stats
  | Equilibrium of scenario
  | Surplus of scenario
  | Regimes of { sc : scenario; po_share : float; levels : int; points : int }
  | Welfare of { sc : scenario; po_share : float; levels : int; points : int }
  | Fig_point of { fig : string; n_cps : int; seed : int; sweep_points : int }

type t = { query : query; deadline_s : float option }

type error = {
  code : string;
  message : string;
  context : (string * string) list;
}

type response = (Json.t, error) result

(* ------------------------------------------------------------------ *)
(* Defaults: the same values the one-shot CLI uses, so an empty        *)
(* "params" object over the wire answers exactly like `ponet regimes`. *)
(* ------------------------------------------------------------------ *)

let default_scenario =
  { n_cps = Po_experiments.Common.default_params.Po_experiments.Common.n_cps;
    seed = Po_experiments.Common.default_params.Po_experiments.Common.seed;
    nu_frac = 0.85 }

let default_po_share = 0.5
let default_levels = 2
let default_points = 9

let query_name = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Equilibrium _ -> "equilibrium"
  | Surplus _ -> "surplus"
  | Regimes _ -> "regimes"
  | Welfare _ -> "welfare"
  | Fig_point _ -> "fig_point"

(* ------------------------------------------------------------------ *)
(* Errors                                                             *)
(* ------------------------------------------------------------------ *)

let error ?(context = []) code message = { code; message; context }

let invalid_request ?context message =
  error ?context "invalid_request" message

let overloaded ~queue_depth ~capacity =
  error "overloaded"
    (Printf.sprintf
       "admission queue full (%d/%d); retry later or raise --queue"
       queue_depth capacity)

let shutting_down = error "overloaded" "server is shutting down"

let kind_code (kind : Po_guard.Po_error.kind) =
  match kind with
  | Po_guard.Po_error.No_bracket _ -> "no_bracket"
  | Po_guard.Po_error.Non_convergence _ -> "non_convergence"
  | Po_guard.Po_error.Invalid_scenario _ -> "invalid_scenario"
  | Po_guard.Po_error.Worker_crash _ -> "worker_crash"
  | Po_guard.Po_error.Io_failure _ -> "io_failure"
  | Po_guard.Po_error.Deadline_exceeded _ -> "deadline_exceeded"
  | Po_guard.Po_error.Chunk_timeout _ -> "chunk_timeout"
  | Po_guard.Po_error.Cancelled _ -> "cancelled"

let error_of_po (e : Po_guard.Po_error.t) =
  { code = kind_code e.Po_guard.Po_error.kind;
    message = Po_guard.Po_error.kind_to_string e.Po_guard.Po_error.kind;
    context = e.Po_guard.Po_error.context }

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let f17 v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let scenario_fields sc =
  [ ("n_cps", Json.Number (float_of_int sc.n_cps));
    ("seed", Json.Number (float_of_int sc.seed));
    ("nu_frac", Json.Number sc.nu_frac) ]

let game_fields po_share levels points =
  [ ("po_share", Json.Number po_share);
    ("levels", Json.Number (float_of_int levels));
    ("points", Json.Number (float_of_int points)) ]

let params_json = function
  | Ping | Stats -> None
  | Equilibrium sc | Surplus sc -> Some (Json.Obj (scenario_fields sc))
  | Regimes { sc; po_share; levels; points }
  | Welfare { sc; po_share; levels; points } ->
      Some (Json.Obj (scenario_fields sc @ game_fields po_share levels points))
  | Fig_point { fig; n_cps; seed; sweep_points } ->
      Some
        (Json.Obj
           [ ("fig", Json.String fig);
             ("n_cps", Json.Number (float_of_int n_cps));
             ("seed", Json.Number (float_of_int seed));
             ("sweep_points", Json.Number (float_of_int sweep_points)) ])

let to_json { query; deadline_s } =
  Json.Obj
    (("query", Json.String (query_name query))
     ::
     (match params_json query with
     | None -> []
     | Some p -> [ ("params", p) ])
    @
    match deadline_s with
    | None -> []
    | Some d -> [ ("deadline_s", Json.Number d) ])

let error_to_json e =
  Json.Obj
    [ ("code", Json.String e.code); ("message", Json.String e.message);
      ("context",
       Json.List
         (List.map
            (fun (k, v) -> Json.List [ Json.String k; Json.String v ])
            e.context)) ]

let response_to_json = function
  | Ok result -> Json.Obj [ ("ok", Json.Bool true); ("result", result) ]
  | Error e -> Json.Obj [ ("ok", Json.Bool false); ("error", error_to_json e) ]

let response_line r = Json.to_string ~indent:0 (response_to_json r)

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* A tiny strict field reader: every consumed key is recorded, and
   [finish] rejects any leftovers, so a misspelled or unsupported
   parameter can never be silently ignored. *)
let obj_fields name = function
  | Json.Obj fields -> fields
  | _ -> fail "%s must be a JSON object" name

let reject_unknown ~where ~known fields =
  List.iter
    (fun (k, _) ->
      if not (List.mem k known) then
        fail "unknown key %S in %s (known: %s)" k where
          (String.concat ", " known))
    fields

(* Integers travel as JSON numbers, i.e. floats.  Beyond 2^53 a float
   no longer represents every integer and [int_of_float] is unspecified
   outside the [int] range, so acceptance is bounded to the float-exact
   window first — an integral 1e300 must be a typed rejection, not an
   arbitrary seed. *)
let float_exact = 9007199254740992.  (* 2^53 *)

let int_field ~where fields key ~default ~min ~max =
  match List.assoc_opt key fields with
  | None -> default
  | Some (Json.Number v)
    when Float.is_integer v && Float.abs v <= float_exact ->
      let n = int_of_float v in
      if n < min || n > max then
        fail "%s.%s = %d outside [%d, %d]" where key n min max
      else n
  | Some (Json.Number v) when Float.is_integer v ->
      fail "%s.%s = %s outside the exact integer range [-2^53, 2^53]" where
        key (f17 v)
  | Some _ -> fail "%s.%s must be an integer" where key

let float_field ~where fields key ~default ~min_excl ~max_incl =
  match List.assoc_opt key fields with
  | None -> default
  | Some (Json.Number v) ->
      if not (Float.is_finite v) then
        fail "%s.%s must be finite" where key
      else if v <= min_excl || v > max_incl then
        fail "%s.%s = %s outside (%s, %s]" where key (f17 v) (f17 min_excl)
          (f17 max_incl)
      else v
  | Some _ -> fail "%s.%s must be a number" where key

let string_field ~where fields key =
  match List.assoc_opt key fields with
  | Some (Json.String s) when s <> "" -> s
  | Some _ -> fail "%s.%s must be a non-empty string" where key
  | None -> fail "%s.%s is required" where key

let scenario_of ~where fields =
  { n_cps =
      int_field ~where fields "n_cps" ~default:default_scenario.n_cps ~min:1
        ~max:1_000_000;
    seed =
      int_field ~where fields "seed" ~default:default_scenario.seed
        ~min:min_int ~max:max_int;
    nu_frac =
      float_field ~where fields "nu_frac" ~default:default_scenario.nu_frac
        ~min_excl:0. ~max_incl:100. }

let scenario_keys = [ "n_cps"; "seed"; "nu_frac" ]
let game_keys = scenario_keys @ [ "po_share"; "levels"; "points" ]

let game_of ~where fields =
  let sc = scenario_of ~where fields in
  let po_share =
    float_field ~where fields "po_share" ~default:default_po_share
      ~min_excl:0. ~max_incl:0.999
  in
  let levels = int_field ~where fields "levels" ~default:default_levels ~min:1 ~max:5 in
  let points = int_field ~where fields "points" ~default:default_points ~min:2 ~max:129 in
  (sc, po_share, levels, points)

let query_of_json name params =
  let where = "params" in
  let fields =
    match params with
    | None -> []
    | Some p -> obj_fields where p
  in
  match name with
  | "ping" | "stats" ->
      reject_unknown ~where ~known:[] fields;
      if String.equal name "ping" then Ping else Stats
  | "equilibrium" | "surplus" ->
      reject_unknown ~where ~known:scenario_keys fields;
      let sc = scenario_of ~where fields in
      if String.equal name "equilibrium" then Equilibrium sc else Surplus sc
  | "regimes" | "welfare" ->
      reject_unknown ~where ~known:game_keys fields;
      let sc, po_share, levels, points = game_of ~where fields in
      if String.equal name "regimes" then
        Regimes { sc; po_share; levels; points }
      else Welfare { sc; po_share; levels; points }
  | "fig_point" ->
      reject_unknown ~where
        ~known:[ "fig"; "n_cps"; "seed"; "sweep_points" ]
        fields;
      Fig_point
        { fig = string_field ~where fields "fig";
          n_cps =
            int_field ~where fields "n_cps" ~default:default_scenario.n_cps
              ~min:1 ~max:1_000_000;
          seed =
            int_field ~where fields "seed" ~default:default_scenario.seed
              ~min:min_int ~max:max_int;
          sweep_points =
            int_field ~where fields "sweep_points" ~default:9 ~min:2 ~max:129 }
  | other ->
      fail
        "unknown query %S (known: ping, stats, equilibrium, surplus, \
         regimes, welfare, fig_point)"
        other

let of_json json =
  match
    match json with
    | Json.Obj fields ->
        reject_unknown ~where:"request"
          ~known:[ "query"; "params"; "deadline_s" ]
          fields;
        let name =
          match List.assoc_opt "query" fields with
          | Some (Json.String s) -> s
          | Some _ -> fail "request.query must be a string"
          | None -> fail "request.query is required"
        in
        let deadline_s =
          match List.assoc_opt "deadline_s" fields with
          | None -> None
          | Some (Json.Number v) when Float.is_finite v && v > 0. && v <= 86_400.
            ->
              Some v
          | Some _ -> fail "request.deadline_s must be a number in (0, 86400]"
        in
        { query = query_of_json name (List.assoc_opt "params" fields);
          deadline_s }
    | _ -> fail "request must be a JSON object"
  with
  | t -> Ok t
  | exception Bad msg -> Error (invalid_request msg)

let of_line line =
  match Json.of_string line with
  | Error msg -> Error (invalid_request ("malformed JSON: " ^ msg))
  | Ok json -> of_json json

(* ------------------------------------------------------------------ *)
(* Response parsing (for the load generator and the tests)            *)
(* ------------------------------------------------------------------ *)

let error_of_json json =
  let str key =
    match Json.member key json with
    | Some (Json.String s) -> s
    | _ -> fail "error.%s must be a string" key
  in
  let context =
    match Json.member "context" json with
    | Some (Json.List items) ->
        List.map
          (function
            | Json.List [ Json.String k; Json.String v ] -> (k, v)
            | _ -> fail "error.context entries must be [key, value] pairs")
          items
    | _ -> fail "error.context must be a list"
  in
  { code = str "code"; message = str "message"; context }

let response_of_json json =
  match
    match Json.member "ok" json with
    | Some (Json.Bool true) -> (
        match Json.member "result" json with
        | Some r -> Ok r
        | None -> fail "ok response without result")
    | Some (Json.Bool false) -> (
        match Json.member "error" json with
        | Some e -> Error (error_of_json e)
        | None -> fail "error response without error")
    | _ -> fail "response.ok must be a boolean"
  with
  | r -> Ok r
  | exception Bad msg -> Error msg

let response_of_line line =
  match Json.of_string line with
  | Error msg -> Error ("malformed JSON: " ^ msg)
  | Ok json -> response_of_json json

(* ------------------------------------------------------------------ *)
(* Cache keys                                                         *)
(* ------------------------------------------------------------------ *)

(* The solve cache is keyed by the canonical parameter string
   (Po_obs.Manifest.params_canonical): the query name plus every
   scenario field, each under its own key name.  The full string — not
   its FNV-1a digest — is the key: the digest is not collision-free,
   and a digest collision would silently replay the wrong scenario's
   bytes.  The hashtable hashes the string for bucketing and compares
   it on probe, so aliasing is impossible.  Deadlines are deliberately
   excluded — they bound the computation, never its value.  Ping and
   stats are uncacheable (stats reads live counters). *)
let cache_key t =
  let sc_kv sc =
    [ ("n_cps", string_of_int sc.n_cps); ("seed", string_of_int sc.seed);
      ("nu_frac", f17 sc.nu_frac) ]
  in
  let kv =
    match t.query with
    | Ping | Stats -> None
    | Equilibrium sc -> Some (sc_kv sc)
    | Surplus sc -> Some (sc_kv sc)
    | Regimes { sc; po_share; levels; points }
    | Welfare { sc; po_share; levels; points } ->
        Some
          (sc_kv sc
          @ [ ("po_share", f17 po_share); ("levels", string_of_int levels);
              ("points", string_of_int points) ])
    | Fig_point { fig; n_cps; seed; sweep_points } ->
        Some
          [ ("fig", fig); ("n_cps", string_of_int n_cps);
            ("seed", string_of_int seed);
            ("sweep_points", string_of_int sweep_points) ]
  in
  Option.map
    (fun kv ->
      Po_obs.Manifest.params_canonical
        (("query", query_name t.query) :: kv))
    kv
