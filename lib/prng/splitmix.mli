(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic element of the reproduction — the 1000-CP ensemble,
    packet jitter in the network simulator, randomised property tests — is
    driven by this generator so that runs are bit-reproducible from a seed.

    The generator is Steele, Lea & Flood's splitmix64: a 64-bit counter
    advanced by the golden-ratio increment and finalised by a
    variance-maximising mixer.  State is one int64; [split] derives an
    independent stream, which the workload generator uses to give each CP
    attribute its own stream (adding a CP never perturbs the draws of
    another). *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** Create a generator from a 64-bit seed.  Equal seeds give equal
    streams. *)

val of_int : int -> t
(** Convenience wrapper around [create (Int64.of_int seed)]. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val split : t -> t
(** Derive a statistically independent child stream; advances the parent. *)

val jump : t -> int -> t
(** [jump t k] is a {e new} generator positioned exactly [k] draws ahead
    of [t] (the parent is not advanced).  O(1): the splitmix64 state is
    an affine function of the draw count.  Valid only when every
    intervening draw consumes exactly one [next_int64] — true of
    {!float}, {!uniform} and {!bool}, {e not} of {!int} (rejection
    sampling) — which is what lets the workload generator fill attribute
    columns chunk-wise, in parallel, bit-identically to a serial fill.
    [k >= 0]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform draw in [[0, 1)] with 53 bits of precision. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform draw in [[lo, hi)]; requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [{0, ..., n-1}]; requires [n > 0].
    Uses rejection to avoid modulo bias. *)

val bool : t -> bool
