type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)
let copy t = { state = t.state }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let jump t k =
  if k < 0 then invalid_arg "Splitmix.jump: negative draw count";
  (* The state advances by exactly one golden increment per [next_int64],
     so the stream position is an affine function of the draw index —
     jumping is one multiply, independent of [k]. *)
  create (Int64.add t.state (Int64.mul golden_gamma (Int64.of_int k)))

let split t =
  let seed = next_int64 t in
  (* Re-mix so the child stream is decorrelated from the parent outputs. *)
  create (mix64 (Int64.logxor seed 0xD1B54A32D192ED03L))

let float t =
  (* 53 high bits scaled into [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let uniform t ~lo ~hi =
  if lo > hi then invalid_arg "Splitmix.uniform: lo > hi";
  lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Splitmix.int: n <= 0";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let raw = Int64.shift_right_logical (next_int64 t) 1 in
    let v = Int64.rem raw n64 in
    (* Reject the final partial block. *)
    if Int64.sub raw v > Int64.sub Int64.max_int (Int64.sub n64 1L) then draw ()
    else Int64.to_int v
  in
  draw ()

let bool t = Int64.logand (next_int64 t) 1L = 1L
