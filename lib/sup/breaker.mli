(** Circuit breaker for the sweep pool's degradation path
    (DESIGN.md §13).

    A two-state machine — {e closed} (normal) and {e open} (tripped) —
    fed by per-attempt outcomes.  After [threshold] {e consecutive}
    failed chunk attempts the breaker opens; the pool then stops
    dispatching supervised chunks to worker domains and re-runs the
    failures serially in the caller ("graceful degradation"), which
    also disarms the worker-environment fault sites ([worker], [slow],
    [timeout]).  A success while closed resets the consecutive count; a
    success while open does {e not} close it — within one sweep the
    breaker is trip-once, so a figure either runs fully pooled or
    finishes degraded, never flapping between the two.

    All state is [Atomic] so worker closures may record outcomes
    without taking locks (and without tripping polint R7). *)

type t

val create : threshold:int -> t
(** Raises {!Po_error.Invalid_scenario} when [threshold < 1]. *)

val threshold : t -> int

val record_failure : t -> bool
(** Count one failed attempt; opens the breaker when the consecutive
    count reaches the threshold.  Returns [true] iff the breaker is
    (now) open. *)

val record_success : t -> unit
(** Reset the consecutive-failure count — unless already open (see
    above). *)

val tripped : t -> bool
val consecutive_failures : t -> int

val trip : t -> unit
(** Force the breaker open (tests, watchdog escalation). *)

val reset : t -> unit
(** Back to closed with a zero count (a fresh sweep). *)
