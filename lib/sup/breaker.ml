type t = { threshold : int; consecutive : int Atomic.t; open_ : bool Atomic.t }

let create ~threshold =
  if threshold < 1 then
    Po_guard.Po_error.fail
      (Po_guard.Po_error.Invalid_scenario
         (Printf.sprintf "breaker threshold must be >= 1, got %d" threshold));
  { threshold; consecutive = Atomic.make 0; open_ = Atomic.make false }

let threshold t = t.threshold
let tripped t = Atomic.get t.open_
let consecutive_failures t = Atomic.get t.consecutive
let trip t = Atomic.set t.open_ true

let record_failure t =
  let n = Atomic.fetch_and_add t.consecutive 1 + 1 in
  if n >= t.threshold then trip t;
  Atomic.get t.open_

let record_success t = if not (Atomic.get t.open_) then Atomic.set t.consecutive 0

let reset t =
  Atomic.set t.consecutive 0;
  Atomic.set t.open_ false
