(** Cooperative deadlines and cancellation tokens (DESIGN.md §13).

    A budget is created once at the top of a run ([ponet --deadline],
    [bench --chaos-smoke], a test) and threaded — by value, never
    ambiently — through the sweep pool and the solver loops.  Nothing is
    preempted: supervised code calls {!check} at its natural iteration
    boundaries (sweep chunk start, equilibrium aggregate evaluation,
    CP-game round), so expiry always surfaces as a typed error from a
    consistent state, never as a hang or a torn checkpoint.

    The wall-clock reads go through [Po_obs.Clock] — a budget measures
    real elapsed time, and its expiry point is therefore {e not}
    deterministic.  That is by design and does not touch the
    bit-reproducibility contract: a run either completes (bit-identical
    to any other completing run) or fails with
    {!Po_error.Deadline_exceeded}; budgets never alter produced values. *)

type t

val start : ?deadline:float -> unit -> t
(** Start the clock now.  [deadline] is the wall-clock allowance in
    seconds from this instant; omitted means "cancellable but
    unbounded".  Raises {!Po_error.Invalid_scenario} for a non-positive
    deadline. *)

val cancel : t -> reason:string -> unit
(** Trip the cancellation token (idempotent, safe from any domain or a
    signal handler).  The next {!check} raises
    {!Po_error.Cancelled} with [reason]. *)

val cancelled : t -> bool
val elapsed : t -> float

val remaining : t -> float option
(** Seconds left ([Some 0.] once expired); [None] when unbounded. *)

val expired : t -> bool
(** True once the deadline passed — without raising. *)

val check : t -> unit
(** The cooperative check point: raises {!Po_error.Cancelled} if the
    token was tripped, else {!Po_error.Deadline_exceeded} if the
    deadline passed, else returns.  Cancellation wins when both hold. *)

val check_opt : t option -> unit
(** [check] through an option — [None] is free, so unsupervised call
    sites pay nothing. *)
