type t = {
  started : float;
  deadline : float option;
  cancelled : string option Atomic.t;
}

let start ?deadline () =
  (match deadline with
  | Some d when d <= 0.0 ->
      Po_guard.Po_error.fail
        (Po_guard.Po_error.Invalid_scenario
           (Printf.sprintf "deadline must be positive, got %g" d))
  | _ -> ());
  {
    started = Po_obs.Clock.now_s ();
    deadline;
    cancelled = Atomic.make None;
  }

(* First cancel wins: a later caller must not rewrite the reason the
   original canceller recorded (it is what surfaces in the error). *)
let cancel t ~reason =
  ignore (Atomic.compare_and_set t.cancelled None (Some reason))
let cancelled t = Atomic.get t.cancelled <> None
let elapsed t = Po_obs.Clock.now_s () -. t.started

let remaining t =
  Option.map (fun d -> Float.max 0.0 (d -. elapsed t)) t.deadline

let expired t =
  match t.deadline with None -> false | Some d -> elapsed t >= d

let check t =
  (match Atomic.get t.cancelled with
  | Some reason -> Po_guard.Po_error.fail (Po_guard.Po_error.Cancelled reason)
  | None -> ());
  match t.deadline with
  | None -> ()
  | Some budget ->
      let elapsed = elapsed t in
      if elapsed >= budget then
        Po_guard.Po_error.fail
          (Po_guard.Po_error.Deadline_exceeded { elapsed; budget })

let check_opt = function None -> () | Some t -> check t
