(** Stuck-chunk detection from chunk-timing heartbeats (DESIGN.md §13).

    The pool already times every chunk for po_obs ([pool.chunk_s]
    histograms); the watchdog reuses those heartbeat measurements as a
    liveness signal.  When a supervised chunk's wall time exceeds the
    policy's per-chunk limit, {!check} converts it into a {e retryable}
    {!Po_error.Chunk_timeout} — the retry/breaker machinery then treats
    a stuck worker exactly like a crashed one.  Detection is
    cooperative (observed when the chunk's timing is recorded), so a
    truly wedged domain is caught at the next boundary rather than
    preempted; the per-attempt timing keyed to the logical chunk index
    keeps classification independent of [--jobs]. *)

type t

val create : limit:float -> t
(** Raises {!Po_error.Invalid_scenario} when [limit <= 0]. *)

val limit : t -> float

val check : t -> chunk:int -> elapsed:float -> unit
(** Classify one chunk-attempt heartbeat: raises
    {!Po_error.Chunk_timeout} when [elapsed] passed the limit. *)

val check_opt : t option -> chunk:int -> elapsed:float -> unit
(** [check] through an option — [None] (no watchdog configured) is
    free. *)
