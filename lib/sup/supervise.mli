(** The supervision policy threaded through the sweep/solver stack
    (DESIGN.md §13).

    po_sup deliberately holds only the policy and its state machines
    ({!Budget}, {!Breaker}, {!Watchdog}); the execution engine that
    applies them lives in [Po_par.Pool], which sits {e above} this
    library in the dependency DAG (po_guard → po_obs → po_sup → po_par).
    A policy travels by value: [bin/ponet] builds one from [--deadline],
    [--retries], [--chunk-timeout] and [--no-degrade]; experiments
    carry it in their params; the pool consults it per chunk.

    {!default} is {e inactive} ({!is_active} = [false]): zero retries,
    no budget, no watchdog.  An inactive policy leaves the pool's
    semantics exactly as before this layer existed — first failure by
    chunk index wins and the sweep fails — which is what keeps the
    long-standing fault-injection contract ([worker@k] fails the
    figure) intact unless a caller opts in. *)

type policy = {
  budget : Budget.t option;  (** deadline + cancellation token *)
  retries : int;
      (** max re-runs per chunk after a {e retryable} failure
          ({!retryable}); 0 = fail fast *)
  degrade : bool;
      (** when the breaker opens, fall back to serial in-caller
          execution instead of failing the sweep *)
  breaker_threshold : int;
      (** consecutive failed attempts that open the breaker *)
  chunk_timeout : float option;  (** watchdog per-chunk limit, seconds *)
}

val default : policy

val v :
  ?budget:Budget.t ->
  ?retries:int ->
  ?degrade:bool ->
  ?breaker_threshold:int ->
  ?chunk_timeout:float ->
  unit ->
  policy
(** Validating constructor (defaults = {!default}); raises
    {!Po_error.Invalid_scenario} on negative retries, a non-positive
    timeout, or a threshold below 1. *)

val is_active : policy -> bool
(** True iff the policy changes pool behaviour: a budget, retries, or a
    watchdog is set.  [degrade]/[breaker_threshold] alone do not
    activate supervision — they only matter once retries exist. *)

val retryable : Po_guard.Po_error.kind -> bool
(** The transient-failure classification: [Worker_crash] (a domain
    died; the chunk is pure and re-runnable) and [Chunk_timeout] (the
    watchdog flagged it) retry; solver errors ([No_bracket],
    [Non_convergence], [Invalid_scenario]) are deterministic and would
    fail identically; [Io_failure], [Deadline_exceeded] and [Cancelled]
    must surface immediately. *)
