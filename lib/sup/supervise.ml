type policy = {
  budget : Budget.t option;
  retries : int;
  degrade : bool;
  breaker_threshold : int;
  chunk_timeout : float option;
}

let default =
  {
    budget = None;
    retries = 0;
    degrade = true;
    breaker_threshold = 3;
    chunk_timeout = None;
  }

let v ?budget ?(retries = 0) ?(degrade = true) ?(breaker_threshold = 3)
    ?chunk_timeout () =
  if retries < 0 then
    Po_guard.Po_error.fail
      (Po_guard.Po_error.Invalid_scenario
         (Printf.sprintf "retries must be >= 0, got %d" retries));
  (match chunk_timeout with
  | Some l when l <= 0.0 ->
      Po_guard.Po_error.fail
        (Po_guard.Po_error.Invalid_scenario
           (Printf.sprintf "chunk timeout must be positive, got %g" l))
  | _ -> ());
  if breaker_threshold < 1 then
    Po_guard.Po_error.fail
      (Po_guard.Po_error.Invalid_scenario
         (Printf.sprintf "breaker threshold must be >= 1, got %d"
            breaker_threshold));
  { budget; retries; degrade; breaker_threshold; chunk_timeout }

let is_active p =
  Option.is_some p.budget || p.retries > 0 || Option.is_some p.chunk_timeout

let retryable (kind : Po_guard.Po_error.kind) =
  match kind with
  | Po_guard.Po_error.Worker_crash _ | Po_guard.Po_error.Chunk_timeout _ ->
      true
  | Po_guard.Po_error.No_bracket _ | Po_guard.Po_error.Non_convergence _
  | Po_guard.Po_error.Invalid_scenario _ | Po_guard.Po_error.Io_failure _
  | Po_guard.Po_error.Deadline_exceeded _ | Po_guard.Po_error.Cancelled _ ->
      false
