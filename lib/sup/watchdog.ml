type t = { limit : float }

let create ~limit =
  if limit <= 0.0 then
    Po_guard.Po_error.fail
      (Po_guard.Po_error.Invalid_scenario
         (Printf.sprintf "watchdog limit must be positive, got %g" limit));
  { limit }

let limit t = t.limit

let check t ~chunk ~elapsed =
  if elapsed > t.limit then
    Po_guard.Po_error.fail
      (Po_guard.Po_error.Chunk_timeout { chunk; elapsed; limit = t.limit })

let check_opt o ~chunk ~elapsed =
  match o with None -> () | Some t -> check t ~chunk ~elapsed
